#pragma once
// The Qonductor orchestrator: control plane (API server + resource
// estimator + hybrid scheduler + job manager), data plane (workflow manager
// + registry) and worker nodes (QPU fleet + classical node pool) assembled
// into the user-facing API of Table 2:
//
//   createWorkflow  — package hybrid code into a workflow image  (User->CP)
//   deploy          — register the image for execution           (User->CP)
//   invoke          — run a deployed image                       (User->CP)
//   workflowStatus / workflowResults — query execution           (User->CP)
//   listRuns / getRun — query the run table                      (User->CP)
//   listImages      — registry contents                          (CP->DP)
//   estimateResources — resource plans for a circuit             (CP->CP)
//   generateSchedule  — hybrid schedule for a job batch          (CP->CP)
//
// Invocation is asynchronous: invoke() validates the request, submits the
// run to the event-driven run engine (core/run_engine.hpp) and returns an
// api::RunHandle immediately. Each run is a RunContinuation stepped one DAG
// node per event by a small worker pool against the fleet's virtual clock;
// a batch-mode quantum task parks in the scheduler service with a
// completion callback instead of blocking a worker, so thousands of
// in-flight runs ride on executor_threads workers. All error paths on the
// request/response surface return api::Status — no exception crosses the
// API boundary.
//
// Quantum dispatch is batch-scheduled (§7): by default each quantum task
// parks in the scheduler service's pending queue, and a dedicated scheduler
// thread fires scheduling cycles (queue threshold OR timer on the fleet
// virtual clock) that assign whole batches via the hybrid scheduler.
// getSchedulerStats exposes the cycle history; SchedulingMode::kImmediate
// restores the old greedy per-task path. Tasks no online QPU can host fail
// their run with the typed RESOURCE_EXHAUSTED.
//
// Every run carries api::JobPreferences (per-job MCDM fidelity weight, an
// optional fleet-clock deadline, a priority class): batches form in
// priority order, MCDM picks each job's Pareto point per its own weight,
// and a task still parked when a cycle fires past its deadline fails
// DEADLINE_EXCEEDED without consuming a QPU. reserveQpu/releaseQpu expose
// the §7 reservation flag as a typed surface over the system monitor.
//
// Run records live in a bounded RunTable: terminal runs are garbage-
// collected under QonductorConfig::retention (LRU + TTL), so a long-lived
// orchestrator serving sustained traffic holds a bounded amount of run
// state. In-flight runs are never evicted, and an api::RunHandle keeps
// answering after its record ages out of the table.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "common/thread_safety.hpp"
#include "api/run_handle.hpp"
#include "api/types.hpp"
#include "core/run_engine.hpp"
#include "core/run_table.hpp"
#include "core/scheduler_service.hpp"
#include "obs/health.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "core/system_monitor.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "simulator/noise.hpp"
#include "transpiler/transpiler.hpp"
#include "workflow/registry.hpp"

namespace qon::core {

using RunId = api::RunId;

// The run lifecycle and execution report are part of the public API
// surface (api/types.hpp); core aliases them for backward compatibility.
using WorkflowStatus = api::RunStatus;
using TaskResult = api::TaskResult;
using WorkflowResult = api::WorkflowResult;
using SchedulingMode = api::SchedulingMode;

const char* workflow_status_name(WorkflowStatus status);

/// Per-backend transpilation + resource estimates for one quantum task —
/// everything a scheduling cycle needs to know about the job, computed
/// outside the engine lock (the inputs are immutable). Shared between the
/// prep cache and parked continuations (run_engine.hpp forward-declares it).
struct QuantumTaskPrep {
  std::vector<transpiler::TranspileResult> transpiled;
  std::vector<double> est_fidelity;
  std::vector<double> est_exec_seconds;
};

/// Front-door admission control: a live-run bound checked at invoke()/
/// invokeAll() that sheds excess load by priority class with a typed
/// RESOURCE_EXHAUSTED carrying a retry_after_seconds hint, instead of
/// letting a flash crowd pile runs onto the engine until the pending queue
/// convoys. Each class is admitted while live runs stay under its share of
/// the bound — batch sheds first, standard next, interactive last (it may
/// use the full bound).
struct AdmissionConfig {
  /// Hard bound on concurrently live (non-terminal) runs; 0 disables the
  /// gate entirely (the default — existing deployments are unaffected).
  std::size_t max_live_runs = 0;
  /// kBatch is shed once live runs reach this fraction of max_live_runs.
  double shed_batch_at = 0.5;
  /// kStandard is shed once live runs reach this fraction of max_live_runs.
  /// Must be >= shed_batch_at; kInteractive always gets the full bound.
  double shed_standard_at = 0.75;
  /// The back-off hint attached to every shed RESOURCE_EXHAUSTED.
  double retry_after_seconds = 5.0;
};

/// Rejects out-of-range knobs with kInvalidArgument; kOk otherwise.
api::Status validate_admission_config(const AdmissionConfig& config);

/// Live-health knobs (obs/health.hpp + obs/slo.hpp): the engine watchdog
/// budget, per-class SLO targets and burn-rate alert rules feeding
/// getHealth. The scheduler/queue watchdog budgets live in
/// SchedulerServiceConfig — they belong to the service, which also runs
/// standalone in tests.
struct HealthConfig {
  /// Wall seconds of engine-worker heartbeat silence tolerated while the
  /// engine's event queue is non-empty.
  double engine_stall_budget_seconds = 60.0;
  /// Per-class run-latency targets (virtual seconds) feeding the online
  /// SLO monitor; 0 leaves a class untracked. The SLO machinery only
  /// exists when some class is tracked or a rule is configured.
  std::array<double, api::kNumPriorities> slo_seconds{};
  /// Multi-window burn-rate rules, evaluated on the fleet virtual clock at
  /// each getHealth call; transitions are logged at warn level.
  std::vector<obs::SloRule> alert_rules;
  /// TEST ONLY: invoked by the scheduler's QPU-snapshot hook at cycle
  /// start, before the engine lock is taken — the wedge-injection point of
  /// the watchdog death test. Leave unset in production configs.
  std::function<void()> scheduler_fault_injection;
};

struct QonductorConfig {
  std::size_t num_qpus = 4;
  std::uint64_t seed = 2025;
  /// Deployment-default MCDM preference; a run's
  /// api::JobPreferences::fidelity_weight overrides it per job.
  double fidelity_weight = 0.5;
  estimator::PlanConfig plan_config;
  bool replicated_monitor = false;    ///< Raft-backed system monitor
  std::size_t classical_standard_nodes = 8;
  std::size_t classical_highend_nodes = 2;
  std::size_t classical_fpga_nodes = 1;
  double hidden_sigma = 0.25;         ///< ground-truth perturbation
  /// Trajectory-simulate quantum tasks whose active width fits (exact
  /// counts + Hellinger fidelity); larger tasks use the analytic model.
  int trajectory_width_limit = 12;
  /// Run-engine worker count: how many run state machines advance at any
  /// instant. Unlike the pre-engine executor pool, this does NOT bound the
  /// number of in-flight runs — a parked quantum task frees its worker, so
  /// thousands of runs can wait on a scheduling cycle over two workers.
  std::size_t executor_threads = 2;
  /// The batch-scheduling job manager (mode, trigger thresholds, queue
  /// bound — see core::SchedulerServiceConfig). Invalid knobs surface as
  /// INVALID_ARGUMENT from invoke(), never as an exception.
  SchedulerServiceConfig scheduler_service;
  /// Front-door overload shedding (see core::AdmissionConfig). Disabled by
  /// default; invalid knobs surface as INVALID_ARGUMENT from invoke().
  AdmissionConfig admission;
  /// Garbage collection of terminal run records (see core::RunTable).
  RunRetentionPolicy retention;
  /// Telemetry knobs (see obs::TelemetryConfig): run-lifecycle tracing,
  /// histogram observations, trace retention, export sink. Counters backing
  /// getSchedulerStats/getAdmissionStats/prepCacheHits are always on.
  obs::TelemetryConfig telemetry;
  /// Live-health knobs: engine watchdog budget, SLO targets, burn-rate
  /// alert rules (see core::HealthConfig). Watchdogs are always armed;
  /// the SLO monitor only materializes when targets/rules are configured.
  HealthConfig health;
  /// Observer called by the executor right before each task runs (tracing,
  /// test instrumentation). Must be thread-safe; called outside all locks.
  std::function<void(RunId, const std::string&)> on_task_start;
};

/// The orchestrator facade. invoke() is asynchronous: the workflow DAG is
/// executed on the executor pool, scheduling each task on the fleet / node
/// pool and advancing the shared virtual clock under the engine lock.
/// Concurrent clients are safe: registry, run table, monitor and fleet
/// clock are each synchronized.
class Qonductor {
 public:
  explicit Qonductor(QonductorConfig config = {});
  ~Qonductor();

  // -- Table 2: user-facing API (v1, typed statuses, async invoke) -------------
  /// Taken by value: pass an rvalue to hand the task circuits over without
  /// a deep copy.
  api::Result<api::CreateWorkflowResponse> createWorkflow(api::CreateWorkflowRequest request);
  api::Result<api::DeployResponse> deploy(const api::DeployRequest& request);
  /// Returns as soon as the run is queued; execution proceeds off-thread.
  /// kUnavailable once shutdown() has begun. Deadline-aware admission: a
  /// preferences.deadline_seconds at/before the fleet-clock frontier is
  /// rejected kDeadlineExceeded at submit time — the run is never parked
  /// just so a scheduling cycle can discover the miss.
  api::Result<api::RunHandle> invoke(const api::InvokeRequest& request);
  /// Atomic batch: validates every request first, then queues all runs;
  /// on any validation error nothing is started.
  api::Result<std::vector<api::RunHandle>> invokeAll(const std::vector<api::InvokeRequest>& requests);
  api::Result<api::WorkflowStatusResponse> workflowStatus(const api::WorkflowStatusRequest& request) const;
  api::Result<api::WorkflowResultsResponse> workflowResults(const api::WorkflowResultsRequest& request) const;
  /// Lifecycle record of one run: state, virtual-clock timestamps, error.
  /// kNotFound for unknown ids — including runs evicted under `retention`.
  api::Result<api::GetRunResponse> getRun(const api::GetRunRequest& request) const;
  /// Pages over the run table in run-id order with optional state/image
  /// filters; see api::ListRunsRequest.
  api::Result<api::ListRunsResponse> listRuns(const api::ListRunsRequest& request) const;
  /// The scheduler service's effective config and cycle/queue statistics
  /// (cycle count, batch sizes, queue depth, Fig. 9c stage timings). In
  /// kImmediate mode the stats are all-zero.
  api::Result<api::GetSchedulerStatsResponse> getSchedulerStats(
      const api::GetSchedulerStatsRequest& request) const;
  /// The admission gate's counters (accepted/shed per priority class, live
  /// runs against the configured bound) plus the pending queue's capacity-
  /// waitlist statistics. All-zero waitlist fields in kImmediate mode.
  api::Result<api::GetAdmissionStatsResponse> getAdmissionStats(
      const api::GetAdmissionStatsRequest& request) const;
  /// The retained lifecycle trace of one run: the ordered span set
  /// submit -> settle, each span stamped with the fleet virtual clock AND
  /// wall µs. kNotFound for unknown or retention-evicted run ids;
  /// kFailedPrecondition when tracing is disabled in the config.
  api::Result<api::GetRunTraceResponse> getRunTrace(
      const api::GetRunTraceRequest& request) const;
  /// One coherent pass over every registered instrument (counters, gauges,
  /// histograms), stamped with both clocks. Feed it to
  /// obs::render_prometheus / obs::render_json for export.
  api::Result<api::GetMetricsResponse> getMetrics(
      const api::GetMetricsRequest& request) const;
  /// Aggregated live health: per-component watchdog/probe verdicts
  /// (engine, scheduler, queue, admission, fleet) and the SLO burn-rate
  /// alert states, rolled up into a worst-severity overall status (raised
  /// to at least kDegraded while any alert fires). Always available —
  /// liveness is structural, not gated on the telemetry knobs — and safe
  /// to call even while a component is wedged: verdicts derive from
  /// heartbeat AGE, so this never blocks on a stuck thread.
  api::Result<api::GetHealthResponse> getHealth(
      const api::GetHealthRequest& request = {}) const;
  /// Takes a QPU out of scheduling rotation (§7 reservations) via the
  /// monitor's reservation flag — separate from the `online` health flag,
  /// so reservations and device-manager faults compose. Scheduling
  /// snapshots honor both, so jobs already parked in the pending queue
  /// avoid the QPU from the very next cycle. An optional duration_seconds
  /// opens a time window: the reservation auto-releases once a scheduling
  /// cycle fires at/after fleetNow() + duration on the virtual clock.
  /// kNotFound for unknown names; kAlreadyExists when already reserved.
  api::Result<api::ReserveQpuResponse> reserveQpu(const api::ReserveQpuRequest& request);
  /// Returns a reserved QPU to rotation (an unhealthy QPU stays out).
  /// kFailedPrecondition when the QPU was not reserved.
  api::Result<api::ReleaseQpuResponse> releaseQpu(const api::ReleaseQpuRequest& request);
  /// Handle for an already-started run (e.g. a run id received over the
  /// wire); kNotFound for unknown ids.
  api::Result<api::RunHandle> runHandle(RunId run) const;

  /// Stops accepting new runs (subsequent invoke() returns kUnavailable),
  /// drains every live run through the engine — parked quantum tasks
  /// resume as the still-live scheduler service fires cycles, including
  /// one final flush that empties the pending queue — and joins the
  /// engine workers and the scheduler thread. Idempotent; queries keep
  /// working after shutdown.
  void shutdown();

  // -- Table 2: control/data-plane operations ----------------------------------
  std::vector<workflow::ImageId> listImages() const;
  estimator::PlanSet estimateResources(const circuit::Circuit& circ) const;
  sched::ScheduleDecision generateSchedule(const sched::SchedulingInput& input) const;

  // -- introspection -------------------------------------------------------------
  const qpu::Fleet& fleet() const { return fleet_; }
  SystemMonitor& monitor() { return monitor_; }
  const std::vector<sched::ClassicalNode>& nodes() const { return nodes_; }
  /// The run table backing getRun/listRuns (eviction counters, sweep()).
  /// Non-const like monitor(): mutating it is an owner-level operation.
  RunTable& runTable() { return run_table_; }
  /// The event-driven run engine (live/peak run counts, event counter) —
  /// the decoupling statistics bench_burst reports.
  const RunEngine& runEngine() const { return *engine_; }
  /// Current frontier of the fleet's virtual clock, in seconds: the latest
  /// task-completion time any resource has reached.
  double fleetNow() const { return fleet_clock_.load(std::memory_order_acquire); }
  /// Advances the fleet virtual clock to at least `up_to` seconds
  /// (monotonic max — a smaller value is a no-op). The campaign driver
  /// uses this to pace profile arrival instants onto the same clock the
  /// scheduler stamps submissions and deadlines against.
  void advanceFleetClock(double up_to) EXCLUDES(engine_mutex_);
  /// Re-draws calibration for the whole fleet at the current virtual
  /// instant and republishes QPU state — the campaign `recalibrate` churn
  /// event. The calibration fingerprint moves, so the transpile/prep cache
  /// invalidates itself on the next run.
  void recalibrateFleet() EXCLUDES(engine_mutex_);
  /// The batch-scheduling job manager, null in kImmediate mode. Non-const
  /// like monitor(): owner-level access (tests use it to force shutdown
  /// interleavings against in-flight runs).
  SchedulerService* schedulerService() { return scheduler_service_.get(); }
  /// The telemetry bundle (registry + tracer) every component records into.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }
  /// Transpile/estimate cache effectiveness (see prepare_quantum_task):
  /// hits are runs that re-used a burst sibling's per-backend prep. Views
  /// over the registry counters — for a hit RATIO coherent across both,
  /// read qon_prep_cache_{hits,misses}_total from one getMetrics snapshot
  /// instead of calling these back to back.
  std::uint64_t prepCacheHits() const { return prep_cache_hits_->value(); }
  std::uint64_t prepCacheMisses() const { return prep_cache_misses_->value(); }

 private:
  api::Status validate_invoke(const api::InvokeRequest& request,
                              const workflow::WorkflowImage** image_out) const;
  /// The request's preferences with fidelity_weight resolved against the
  /// deployment default — what the run record stores and RunInfo echoes.
  api::JobPreferences effective_preferences(const api::JobPreferences& requested) const;
  /// The live-run budget `priority` may fill before it is shed (its
  /// configured fraction of max_live_runs, at least 1; kInteractive gets
  /// the full bound). Only meaningful while the gate is enabled.
  std::size_t admission_limit(api::Priority priority) const;
  /// The front-door gate: admits while live runs (plus `already_admitted`
  /// earlier entries of the same invokeAll batch) stay under the class
  /// limit, otherwise sheds with RESOURCE_EXHAUSTED + retry-after and bumps
  /// the per-class shed counter. Always Ok when the gate is disabled.
  api::Status admit_run(api::Priority priority, std::size_t already_admitted);
  api::Result<api::RunHandle> start_run(const workflow::WorkflowImage* image,
                                        api::JobPreferences preferences);

  // -- run-engine state machine (one call = one event) --------------------------
  /// Tracing wrapper around step_run_impl: records one "engine_step" span
  /// per event (outcome in the detail). Captures the trace context BEFORE
  /// stepping — after a parking step registers its settlement callback the
  /// continuation may already be resuming on another worker and must not be
  /// touched; the span ring itself locks internally.
  StepOutcome step_run(const std::shared_ptr<RunContinuation>& cont);
  /// Advances a run by one DAG node: first event transitions kPending ->
  /// kRunning, a resume event collects the parked quantum task's verdict
  /// and executes on the assigned QPU, otherwise the cursor node runs
  /// (classical / immediate quantum inline; batch quantum parks). Never
  /// throws — task failures settle the run kFailed.
  StepOutcome step_run_impl(const std::shared_ptr<RunContinuation>& cont);
  /// Writes the continuation's accumulated result into the run record,
  /// stamps finished_at, publishes the terminal status to the monitor
  /// (before mark_terminal, so a concurrent eviction can erase it) and
  /// makes the run GC-eligible. Always returns kFinished.
  StepOutcome settle_run(const std::shared_ptr<RunContinuation>& cont);
  /// Routes a task's failure verdict into the run's terminal result and
  /// settles it: kCancelled ends the run kCancelled (the task was pulled
  /// out by cancel(), not a failure); anything else ends it kFailed with
  /// the typed code and the task name prefixed onto the message.
  StepOutcome settle_task_failure(const std::shared_ptr<RunContinuation>& cont,
                                  const std::string& task_name,
                                  const api::Status& status);
  /// Hands the quantum task at the continuation's cursor to the scheduler
  /// service with a settlement callback that posts the resume event.
  /// Nothing may touch `cont` after the callback is registered — another
  /// worker may already be resuming it.
  StepOutcome park_quantum_task(const std::shared_ptr<RunContinuation>& cont,
                                const workflow::HybridTask& task, double ready_at);
  /// Books the finished node into the continuation and advances the cursor.
  void record_task_result(RunContinuation& cont, workflow::TaskId node, TaskResult tr);
  /// The kImmediate fallback: a single-job scheduling cycle inline.
  api::Result<TaskResult> run_quantum_immediate(const std::shared_ptr<api::RunState>& state,
                                                const workflow::HybridTask& task,
                                                double ready_at);
  api::Result<TaskResult> run_classical_task(const workflow::HybridTask& task,
                                             double ready_at);
  std::shared_ptr<const QuantumTaskPrep> prepare_quantum_task(
      const workflow::HybridTask& task) const;
  /// Hash of every backend's calibration cycle — the freshness half of the
  /// prep-cache key (a recalibration invalidates all cached preps).
  std::uint64_t calibration_fingerprint() const;
  /// Executes the prepared task on backend `q`. `not_before` floors the
  /// start time at the dispatching cycle's fire time (0 in immediate mode).
  TaskResult execute_quantum_locked(const workflow::HybridTask& task,
                                    const QuantumTaskPrep& prep, std::size_t q,
                                    double ready_at, double not_before)
      REQUIRES(engine_mutex_);
  /// QPU states for a scheduling input (queue waits relative to
  /// `reference`, online flags from the monitor).
  std::vector<sched::QpuState> snapshot_qpu_states_locked(double reference) const
      REQUIRES(engine_mutex_);
  /// Releases every windowed reservation whose deadline lies at/before
  /// `now` on the fleet virtual clock. Called right before a scheduling
  /// snapshot (batch cycle or immediate dispatch), so the snapshotting
  /// cycle already schedules onto the released QPUs. Acquires
  /// reservations_mutex_ (inside engine_mutex_ in the hierarchy).
  void expire_reservations(double now) EXCLUDES(reservations_mutex_);
  void publish_fleet_state() REQUIRES(engine_mutex_);
  void advance_fleet_clock(double up_to) REQUIRES(engine_mutex_);

  QonductorConfig config_;
  Rng rng_ GUARDED_BY(engine_mutex_);
  sim::HiddenNoise hidden_ GUARDED_BY(engine_mutex_);
  qpu::Fleet fleet_;
  std::vector<qpu::Backend> templates_;
  std::vector<sched::ClassicalNode> nodes_;
  workflow::WorkflowRegistry registry_ GUARDED_BY(registry_mutex_);
  std::map<workflow::ImageId, bool> deployed_ GUARDED_BY(registry_mutex_);
  SystemMonitor monitor_;
  /// Owns the run records; mutable because lookups refresh LRU recency.
  /// Declared before executor_ so in-flight runs can use it during drain.
  mutable RunTable run_table_;
  std::vector<double> qpu_available_at_ GUARDED_BY(engine_mutex_);
  /// Monotone frontier of the virtual clock, advanced by the executor under
  /// engine_mutex_ and read lock-free when stamping run lifecycle times.
  std::atomic<double> fleet_clock_{0.0};

  /// Guards registry_ + deployed_. The registry is append-only, so image
  /// pointers obtained under this lock stay valid for the orchestrator's
  /// lifetime.
  mutable Mutex registry_mutex_{LockRank::kRegistry, "Qonductor::registry_mutex_"};
  /// Serializes data-plane task execution: the fleet virtual clock
  /// (qpu_available_at_), the shared RNG and the hidden-noise model.
  /// Outermost lock of the hierarchy: execution takes the reservation,
  /// monitor and thread-pool locks inside it.
  Mutex engine_mutex_{LockRank::kEngine, "Qonductor::engine_mutex_"};

  /// The telemetry bundle (registry + tracer). Declared before the
  /// scheduler service and the engine: runs draining through either during
  /// destruction still record spans and bump counters, so the bundle must
  /// be destroyed after both.
  obs::Telemetry telemetry_;

  /// Live-health aggregation: watchdog + probe registrations. Declared
  /// right after the telemetry bundle and before the scheduler service and
  /// the engine — both register watchdogs over heartbeats they own during
  /// construction, and their destructors run first, so no check() can
  /// outlive a registered heartbeat.
  obs::HealthMonitor health_;
  /// Beaten by every engine worker once per dispatched event (wired into
  /// the engine's on_event hook).
  obs::Heartbeat engine_beat_;
  /// Online SLO burn tracking, fed from settle_run on the virtual clock;
  /// null when no class target and no alert rule is configured.
  std::unique_ptr<obs::SloMonitor> slo_;

  /// Verdict of construction-time config validation; a non-OK value is
  /// returned by invoke()/invokeAll() so bad scheduler knobs surface as a
  /// typed status instead of an exception crossing the API boundary.
  api::Status init_status_;
  /// The batch-scheduling job manager (null in kImmediate mode or when the
  /// config failed validation). Declared before engine_: runs draining
  /// through the engine during destruction still park tasks here — and
  /// resume through its cycles — so the service must outlive the engine.
  /// Shared so a parked run's cancel hook can hold a weak reference that
  /// outlives the orchestrator safely.
  std::shared_ptr<SchedulerService> scheduler_service_;

  /// Cache of per-backend transpilation + estimates keyed by task identity
  /// (registry task addresses are stable — the registry is append-only)
  /// and invalidated wholesale when the fleet calibration fingerprint
  /// moves. A burst of runs of one image transpiles its circuits once.
  /// Bounded: at most kPrepCacheCapacity tasks, oldest-inserted evicted
  /// first — the registry is unbounded, so the cache must not mirror it.
  static constexpr std::size_t kPrepCacheCapacity = 512;
  mutable Mutex prep_cache_mutex_{LockRank::kPrepCache, "Qonductor::prep_cache_mutex_"};
  mutable std::map<const workflow::HybridTask*, std::shared_ptr<const QuantumTaskPrep>>
      prep_cache_ GUARDED_BY(prep_cache_mutex_);
  /// FIFO eviction order.
  mutable std::deque<const workflow::HybridTask*> prep_cache_order_
      GUARDED_BY(prep_cache_mutex_);
  mutable std::uint64_t prep_cache_fingerprint_ GUARDED_BY(prep_cache_mutex_) = 0;
  /// Registry counters (qon_prep_cache_{hits,misses}_total): lock-free
  /// relaxed increments on the prepare path, read coherently by snapshot().
  obs::Counter* prep_cache_hits_ = nullptr;
  obs::Counter* prep_cache_misses_ = nullptr;

  /// Admission-gate counters, indexed by api::Priority — registry-backed
  /// (qon_admission_{accepted,shed}_total{priority=...}): the gate sits on
  /// the invoke() hot path, so increments stay single relaxed atomics.
  std::array<obs::Counter*, api::kNumPriorities> admission_accepted_{};
  std::array<obs::Counter*, api::kNumPriorities> admission_shed_{};

  /// Run end-to-end virtual latency (submit -> settle) per priority class,
  /// observed at settle when metrics are enabled.
  std::array<obs::Histogram*, api::kNumPriorities> run_latency_seconds_{};
  /// Settled runs per terminal status, indexed by api::RunStatus.
  std::array<obs::Counter*, 5> runs_finished_total_{};

  /// Reservation time windows (§7): QPU name -> fleet-clock instant the
  /// reservation auto-releases. Open-ended reservations have no entry.
  Mutex reservations_mutex_{LockRank::kReservations, "Qonductor::reservations_mutex_"};
  std::map<std::string, double> reservation_release_at_ GUARDED_BY(reservations_mutex_);

  /// Declared last so it is destroyed first: the destructor drains every
  /// live run while all other members — notably the scheduler service the
  /// parked continuations resume through — are still alive.
  std::unique_ptr<RunEngine> engine_;
};

}  // namespace qon::core
