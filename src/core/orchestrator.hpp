#pragma once
// The Qonductor orchestrator: control plane (API server + resource
// estimator + hybrid scheduler + job manager), data plane (workflow manager
// + registry) and worker nodes (QPU fleet + classical node pool) assembled
// into the user-facing API of Table 2:
//
//   createWorkflow  — package hybrid code into a workflow image  (User->CP)
//   deploy          — register the image for execution           (User->CP)
//   invoke          — run a deployed image                       (User->CP)
//   workflowStatus / workflowResults — query execution           (User->CP)
//   listImages      — registry contents                          (CP->DP)
//   estimateResources — resource plans for a circuit             (CP->CP)
//   generateSchedule  — hybrid schedule for a job batch          (CP->CP)
//
// Invocation is asynchronous: invoke() validates the request, enqueues the
// run on the executor pool and returns an api::RunHandle immediately; the
// workflow DAG executes off-thread against the fleet's virtual clock. All
// error paths on the request/response surface return api::Status — no
// exception crosses the API boundary. The pre-async signatures survive as
// thin deprecated shims that block and throw, so older call sites keep
// compiling while they migrate.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "api/run_handle.hpp"
#include "api/types.hpp"
#include "common/thread_pool.hpp"
#include "core/system_monitor.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "simulator/noise.hpp"
#include "workflow/registry.hpp"

namespace qon::core {

using RunId = api::RunId;

// The run lifecycle and execution report are part of the public API
// surface (api/types.hpp); core aliases them for backward compatibility.
using WorkflowStatus = api::RunStatus;
using TaskResult = api::TaskResult;
using WorkflowResult = api::WorkflowResult;

const char* workflow_status_name(WorkflowStatus status);

struct QonductorConfig {
  std::size_t num_qpus = 4;
  std::uint64_t seed = 2025;
  double fidelity_weight = 0.5;       ///< MCDM preference
  estimator::PlanConfig plan_config;
  bool replicated_monitor = false;    ///< Raft-backed system monitor
  std::size_t classical_standard_nodes = 8;
  std::size_t classical_highend_nodes = 2;
  std::size_t classical_fpga_nodes = 1;
  double hidden_sigma = 0.25;         ///< ground-truth perturbation
  /// Trajectory-simulate quantum tasks whose active width fits (exact
  /// counts + Hellinger fidelity); larger tasks use the analytic model.
  int trajectory_width_limit = 12;
  /// Executor pool width: how many workflow runs make progress in parallel.
  std::size_t executor_threads = 2;
  /// Observer called by the executor right before each task runs (tracing,
  /// test instrumentation). Must be thread-safe; called outside all locks.
  std::function<void(RunId, const std::string&)> on_task_start;
};

/// The orchestrator facade. invoke() is asynchronous: the workflow DAG is
/// executed on the executor pool, scheduling each task on the fleet / node
/// pool and advancing the shared virtual clock under the engine lock.
/// Concurrent clients are safe: registry, run table, monitor and fleet
/// clock are each synchronized.
class Qonductor {
 public:
  explicit Qonductor(QonductorConfig config = {});
  ~Qonductor();

  // -- Table 2: user-facing API (v1, typed statuses, async invoke) -------------
  /// Taken by value: pass an rvalue to hand the task circuits over without
  /// a deep copy.
  api::Result<api::CreateWorkflowResponse> createWorkflow(api::CreateWorkflowRequest request);
  api::Result<api::DeployResponse> deploy(const api::DeployRequest& request);
  /// Returns as soon as the run is queued; execution proceeds off-thread.
  api::Result<api::RunHandle> invoke(const api::InvokeRequest& request);
  /// Atomic batch: validates every request first, then queues all runs;
  /// on any validation error nothing is started.
  api::Result<std::vector<api::RunHandle>> invokeAll(const std::vector<api::InvokeRequest>& requests);
  api::Result<api::WorkflowStatusResponse> workflowStatus(const api::WorkflowStatusRequest& request) const;
  api::Result<api::WorkflowResultsResponse> workflowResults(const api::WorkflowResultsRequest& request) const;
  /// Handle for an already-started run (e.g. a run id received over the
  /// wire); kNotFound for unknown ids.
  api::Result<api::RunHandle> runHandle(RunId run) const;

  // -- deprecated synchronous shims (pre-v1 surface) ---------------------------
  /// @deprecated Use createWorkflow(CreateWorkflowRequest). Throws
  /// std::invalid_argument on error.
  workflow::ImageId createWorkflow(const std::string& name,
                                   std::vector<workflow::HybridTask> tasks,
                                   const std::string& yaml_config = "");
  /// @deprecated Use deploy(DeployRequest). Throws std::out_of_range on an
  /// unknown image and std::invalid_argument otherwise.
  workflow::ImageId deploy(workflow::ImageId image);
  /// @deprecated Use invoke(InvokeRequest). Blocks until the run finishes
  /// (the old synchronous contract); throws std::invalid_argument on error.
  RunId invoke(workflow::ImageId image);
  /// @deprecated Use workflowStatus(WorkflowStatusRequest). Throws
  /// std::out_of_range on an unknown run.
  WorkflowStatus workflowStatus(RunId run) const;
  /// @deprecated Use workflowResults(WorkflowResultsRequest). Blocks until
  /// the run is terminal; throws std::out_of_range on an unknown run.
  const WorkflowResult& workflowResults(RunId run) const;

  // -- Table 2: control/data-plane operations ----------------------------------
  std::vector<workflow::ImageId> listImages() const;
  estimator::PlanSet estimateResources(const circuit::Circuit& circ) const;
  sched::ScheduleDecision generateSchedule(const sched::SchedulingInput& input) const;

  // -- introspection -------------------------------------------------------------
  const qpu::Fleet& fleet() const { return fleet_; }
  SystemMonitor& monitor() { return monitor_; }
  const std::vector<sched::ClassicalNode>& nodes() const { return nodes_; }

 private:
  api::Status validate_invoke(const api::InvokeRequest& request,
                              const workflow::WorkflowImage** image_out) const;
  std::shared_ptr<api::RunState> start_run(const workflow::WorkflowImage* image);
  void execute_run(const std::shared_ptr<api::RunState>& state,
                   const workflow::WorkflowImage* image);
  TaskResult run_quantum_task(const workflow::HybridTask& task, double ready_at, RunId run);
  TaskResult run_classical_task(const workflow::HybridTask& task, double ready_at);
  void publish_fleet_state();

  QonductorConfig config_;
  Rng rng_;
  sim::HiddenNoise hidden_;
  qpu::Fleet fleet_;
  std::vector<qpu::Backend> templates_;
  std::vector<sched::ClassicalNode> nodes_;
  workflow::WorkflowRegistry registry_;
  std::map<workflow::ImageId, bool> deployed_;
  SystemMonitor monitor_;
  std::map<RunId, std::shared_ptr<api::RunState>> runs_;
  RunId next_run_ = 1;
  std::vector<double> qpu_available_at_;

  /// Guards registry_ + deployed_. The registry is append-only, so image
  /// pointers obtained under this lock stay valid for the orchestrator's
  /// lifetime.
  mutable std::mutex registry_mutex_;
  /// Guards runs_ + next_run_. Individual run records carry their own lock.
  mutable std::mutex runs_mutex_;
  /// Serializes data-plane task execution: the fleet virtual clock
  /// (qpu_available_at_), the shared RNG and the hidden-noise model.
  std::mutex engine_mutex_;

  /// Declared last so it is destroyed first: the destructor drains queued
  /// runs while every other member is still alive.
  std::unique_ptr<ThreadPool> executor_;
};

}  // namespace qon::core
