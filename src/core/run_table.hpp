#pragma once
// Bounded, thread-safe table of run records — the control plane's memory of
// every workflow invocation. PR-1's orchestrator kept runs in a bare map
// that grew without bound; long-lived serving scenarios (cloudsim soak
// runs, multi-tenant traffic) leaked one record per run forever. The
// RunTable owns the records instead and garbage-collects them under a
// configurable retention policy:
//
//   - only *terminal* runs (completed / failed / cancelled) are ever
//     evicted; a run that is still pending or running is pinned no matter
//     how far over budget the table is,
//   - capacity bound: at most `max_terminal_runs` terminal records are
//     retained, evicting the least-recently-used first (a find() refreshes
//     recency, so recently-queried results survive longest),
//   - age bound: a terminal record older than `terminal_ttl_seconds` is
//     evicted on the next table operation (lookups of an expired record
//     miss, exactly as if it had already been swept).
//
// Eviction removes the table's reference only. Run records are shared
// (std::shared_ptr<api::RunState>), so an api::RunHandle held by a client
// keeps answering poll()/result() after the record ages out of the table —
// only id-based queries (getRun / listRuns / runHandle) return NOT_FOUND.

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "api/run_handle.hpp"
#include "common/thread_safety.hpp"

namespace qon::core {

/// Garbage-collection knobs for terminal run records. In-flight runs are
/// never subject to either bound.
struct RunRetentionPolicy {
  /// Max terminal records retained; LRU-evicted beyond this. 0 = unlimited.
  std::size_t max_terminal_runs = 1024;
  /// Terminal records older than this are evicted lazily on the next table
  /// operation. 0 = no age bound.
  double terminal_ttl_seconds = 0.0;
  /// Clock used for TTL accounting, in seconds. Defaults to the process
  /// steady clock; tests inject a fake to make TTL eviction deterministic.
  std::function<double()> clock;
};

/// Thread-safe owner of run records with retention-policy GC. One internal
/// mutex guards the table structure; the records themselves carry their own
/// locks (api::RunState::mutex), so table operations never block on an
/// executor that holds a record lock.
class RunTable {
 public:
  explicit RunTable(RunRetentionPolicy policy = {});

  /// Observer invoked with the ids of evicted runs, outside the table lock
  /// (safe to call back into the table or other locked subsystems).
  void set_eviction_observer(std::function<void(api::RunId)> on_evict);

  /// Assigns the next run id, stamps it into the record and inserts it as
  /// in-flight. Also opportunistically sweeps expired terminal records.
  /// Precondition: `state` is not yet shared with other threads (the id is
  /// stored without taking the record's lock).
  api::RunId insert(const std::shared_ptr<api::RunState>& state);

  /// Records that a run reached a terminal state, making it eligible for
  /// GC, then enforces both retention bounds. Unknown ids and repeated
  /// calls are ignored. Safe to call while holding the record's own lock —
  /// the executor does exactly that, so that a client observing a terminal
  /// status is guaranteed the table already treats the run as terminal.
  void mark_terminal(api::RunId id);

  /// Looks up a record. Touches LRU recency for terminal records; a record
  /// past its TTL is evicted and reported as absent (nullptr).
  std::shared_ptr<api::RunState> find(api::RunId id);

  /// Removes a record outright regardless of state (used to retract a run
  /// whose executor submission was rejected). Does not count as an
  /// eviction. Returns false for unknown ids.
  bool erase(api::RunId id);

  /// Evicts every terminal record past its TTL; returns how many.
  std::size_t sweep();

  /// Records with id > `after`, in ascending run-id order — the pagination
  /// primitive behind listRuns. The table is bounded, so the full tail is
  /// cheap to snapshot; callers filter and page over it.
  std::vector<std::shared_ptr<api::RunState>> list_after(api::RunId after) const;

  std::size_t size() const;
  std::size_t terminal_count() const;
  /// Total records evicted by policy since construction (not erase()).
  std::uint64_t evictions() const;
  const RunRetentionPolicy& policy() const { return policy_; }

 private:
  struct Entry {
    std::shared_ptr<api::RunState> state;
    bool terminal = false;
    double terminal_at = 0.0;              ///< policy clock at mark_terminal
    std::list<api::RunId>::iterator lru;   ///< valid iff terminal
  };

  bool expired_locked(const Entry& entry, double now) const REQUIRES(mutex_);
  void evict_locked(std::map<api::RunId, Entry>::iterator it,
                    std::vector<api::RunId>& evicted) REQUIRES(mutex_);
  void enforce_locked(std::vector<api::RunId>& evicted) REQUIRES(mutex_);
  /// Invokes the observer outside mutex_ — it may re-enter the table or
  /// take the monitor lock.
  void notify_evictions(const std::vector<api::RunId>& evicted) const EXCLUDES(mutex_);

  RunRetentionPolicy policy_;

  mutable Mutex mutex_{LockRank::kRunTable, "RunTable::mutex_"};
  std::function<void(api::RunId)> on_evict_ GUARDED_BY(mutex_);
  std::map<api::RunId, Entry> entries_ GUARDED_BY(mutex_);
  /// Terminal runs, least recently used first.
  std::list<api::RunId> lru_ GUARDED_BY(mutex_);
  api::RunId next_id_ GUARDED_BY(mutex_) = 1;
  std::uint64_t evictions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace qon::core
