#include "core/system_monitor.hpp"

#include <algorithm>
#include <sstream>

namespace qon::core {

SystemMonitor::SystemMonitor(bool replicated, std::size_t replicas) {
  if (replicated) store_ = std::make_unique<raft::ReplicatedKvStore>(replicas);
}

bool SystemMonitor::put_unlocked(const std::string& key, const std::string& value) {
  if (store_) return store_->set(key, value);
  local_[key] = value;
  return true;
}

std::optional<std::string> SystemMonitor::get_unlocked(const std::string& key) const {
  if (store_) return store_->get(key);
  const auto it = local_.find(key);
  if (it == local_.end()) return std::nullopt;
  return it->second;
}

bool SystemMonitor::put(const std::string& key, const std::string& value) {
  MutexLock lock(mutex_);
  return put_unlocked(key, value);
}

std::optional<std::string> SystemMonitor::get(const std::string& key) const {
  MutexLock lock(mutex_);
  return get_unlocked(key);
}

bool SystemMonitor::erase(const std::string& key) {
  MutexLock lock(mutex_);
  if (store_) return store_->erase(key);
  local_.erase(key);
  return true;
}

namespace {

std::string serialize_qpu(const QpuInfo& info) {
  std::ostringstream oss;
  oss << info.qubits << "|" << info.queue_length << "|" << info.queue_wait_seconds << "|"
      << info.mean_gate_error_2q << "|" << info.calibration_cycle << "|"
      << (info.online ? 1 : 0) << "|" << (info.reserved ? 1 : 0);
  return oss.str();
}

std::optional<QpuInfo> deserialize_qpu(const std::string& name, const std::string& data) {
  QpuInfo info;
  info.name = name;
  char sep = 0;
  int online = 1;
  std::istringstream in(data);
  if (!(in >> info.qubits >> sep >> info.queue_length >> sep >> info.queue_wait_seconds >>
        sep >> info.mean_gate_error_2q >> sep >> info.calibration_cycle >> sep >> online)) {
    return std::nullopt;
  }
  info.online = online != 0;
  // Trailing reservation flag; absent in pre-reservation records.
  int reserved = 0;
  if (in >> sep >> reserved) info.reserved = reserved != 0;
  return info;
}

}  // namespace

void SystemMonitor::update_qpu(const QpuInfo& info) {
  MutexLock lock(mutex_);
  if (std::find(qpu_names_.begin(), qpu_names_.end(), info.name) == qpu_names_.end()) {
    qpu_names_.push_back(info.name);
  }
  put_unlocked("qpu/" + info.name, serialize_qpu(info));
}

void SystemMonitor::publish_qpu_dynamic(const QpuInfo& info) {
  MutexLock lock(mutex_);
  if (std::find(qpu_names_.begin(), qpu_names_.end(), info.name) == qpu_names_.end()) {
    qpu_names_.push_back(info.name);
  }
  QpuInfo merged = info;
  if (const auto raw = get_unlocked("qpu/" + info.name)) {
    if (const auto previous = deserialize_qpu(info.name, *raw)) {
      // Health and reservation belong to set_qpu_online/set_qpu_reserved;
      // republishing dynamic state must not flip either.
      merged.online = previous->online;
      merged.reserved = previous->reserved;
    }
  }
  put_unlocked("qpu/" + info.name, serialize_qpu(merged));
}

std::optional<bool> SystemMonitor::set_qpu_online(const std::string& name, bool online) {
  MutexLock lock(mutex_);
  const auto raw = get_unlocked("qpu/" + name);
  if (!raw) return std::nullopt;
  auto info = deserialize_qpu(name, *raw);
  if (!info) return std::nullopt;
  const bool previous = info->online;
  info->online = online;
  put_unlocked("qpu/" + name, serialize_qpu(*info));
  return previous;
}

std::optional<bool> SystemMonitor::set_qpu_reserved(const std::string& name, bool reserved) {
  MutexLock lock(mutex_);
  const auto raw = get_unlocked("qpu/" + name);
  if (!raw) return std::nullopt;
  auto info = deserialize_qpu(name, *raw);
  if (!info) return std::nullopt;
  const bool previous = info->reserved;
  info->reserved = reserved;
  put_unlocked("qpu/" + name, serialize_qpu(*info));
  return previous;
}

std::optional<QpuInfo> SystemMonitor::qpu(const std::string& name) const {
  std::optional<std::string> raw;
  {
    MutexLock lock(mutex_);
    raw = get_unlocked("qpu/" + name);
  }
  if (!raw) return std::nullopt;
  return deserialize_qpu(name, *raw);
}

std::vector<std::string> SystemMonitor::qpu_names() const {
  MutexLock lock(mutex_);
  return qpu_names_;
}

void SystemMonitor::set_workflow_status(std::uint64_t run_id, const std::string& status) {
  MutexLock lock(mutex_);
  put_unlocked("workflow/" + std::to_string(run_id) + "/status", status);
}

std::optional<std::string> SystemMonitor::workflow_status(std::uint64_t run_id) const {
  MutexLock lock(mutex_);
  return get_unlocked("workflow/" + std::to_string(run_id) + "/status");
}

void SystemMonitor::erase_workflow_status(std::uint64_t run_id) {
  erase("workflow/" + std::to_string(run_id) + "/status");
}

}  // namespace qon::core
