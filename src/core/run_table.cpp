#include "core/run_table.hpp"

#include <chrono>

namespace qon::core {

namespace {

double steady_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RunTable::RunTable(RunRetentionPolicy policy) : policy_(std::move(policy)) {
  if (!policy_.clock) policy_.clock = steady_now_seconds;
}

void RunTable::set_eviction_observer(std::function<void(api::RunId)> on_evict) {
  MutexLock lock(mutex_);
  on_evict_ = std::move(on_evict);
}

bool RunTable::expired_locked(const Entry& entry, double now) const {
  return entry.terminal && policy_.terminal_ttl_seconds > 0.0 &&
         now - entry.terminal_at >= policy_.terminal_ttl_seconds;
}

void RunTable::evict_locked(std::map<api::RunId, Entry>::iterator it,
                            std::vector<api::RunId>& evicted) {
  lru_.erase(it->second.lru);
  evicted.push_back(it->first);
  ++evictions_;
  entries_.erase(it);
}

// Enforces both retention bounds: first age (so stale records don't consume
// capacity), then capacity in LRU order.
void RunTable::enforce_locked(std::vector<api::RunId>& evicted) {
  if (policy_.terminal_ttl_seconds > 0.0 && !lru_.empty()) {
    const double now = policy_.clock();
    for (auto id_it = lru_.begin(); id_it != lru_.end();) {
      const auto it = entries_.find(*id_it);
      ++id_it;  // evict_locked invalidates the entry's lru iterator
      if (it != entries_.end() && expired_locked(it->second, now)) {
        evict_locked(it, evicted);
      }
    }
  }
  if (policy_.max_terminal_runs > 0) {
    while (lru_.size() > policy_.max_terminal_runs) {
      evict_locked(entries_.find(lru_.front()), evicted);
    }
  }
}

void RunTable::notify_evictions(const std::vector<api::RunId>& evicted) const {
  if (evicted.empty()) return;
  std::function<void(api::RunId)> observer;
  {
    MutexLock lock(mutex_);
    observer = on_evict_;
  }
  if (!observer) return;
  for (const api::RunId id : evicted) observer(id);
}

api::RunId RunTable::insert(const std::shared_ptr<api::RunState>& state) {
  std::vector<api::RunId> evicted;
  api::RunId id = 0;
  {
    MutexLock lock(mutex_);
    id = next_id_++;
    // Precondition: the record is not yet shared, so the id store needs no
    // state lock. Keeping the state lock out of the table's critical
    // sections lets the executor call mark_terminal() while holding the
    // state lock (terminal visibility and GC eligibility stay atomic)
    // without a lock-order cycle.
    state->id = id;
    Entry entry;
    entry.state = state;
    entries_.emplace(id, std::move(entry));
    enforce_locked(evicted);
  }
  notify_evictions(evicted);
  return id;
}

std::shared_ptr<api::RunState> RunTable::find(api::RunId id) {
  std::vector<api::RunId> evicted;
  std::shared_ptr<api::RunState> state;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
      // Only consult the clock when a TTL verdict is actually possible —
      // the default policy (no TTL) pays nothing under the table lock.
      const bool ttl_applies =
          it->second.terminal && policy_.terminal_ttl_seconds > 0.0;
      if (ttl_applies && expired_locked(it->second, policy_.clock())) {
        evict_locked(it, evicted);
      } else {
        if (it->second.terminal) {
          // Refresh recency: a queried result is the one worth keeping.
          lru_.splice(lru_.end(), lru_, it->second.lru);
        }
        state = it->second.state;
      }
    }
  }
  notify_evictions(evicted);
  return state;
}

bool RunTable::erase(api::RunId id) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.terminal) lru_.erase(it->second.lru);
  entries_.erase(it);
  return true;
}

void RunTable::mark_terminal(api::RunId id) {
  std::vector<api::RunId> evicted;
  {
    MutexLock lock(mutex_);
    const auto it = entries_.find(id);
    if (it == entries_.end() || it->second.terminal) return;
    it->second.terminal = true;
    it->second.terminal_at = policy_.clock();
    it->second.lru = lru_.insert(lru_.end(), id);
    enforce_locked(evicted);
  }
  notify_evictions(evicted);
}

std::size_t RunTable::sweep() {
  std::vector<api::RunId> evicted;
  {
    MutexLock lock(mutex_);
    enforce_locked(evicted);
  }
  notify_evictions(evicted);
  return evicted.size();
}

std::vector<std::shared_ptr<api::RunState>> RunTable::list_after(api::RunId after) const {
  MutexLock lock(mutex_);
  std::vector<std::shared_ptr<api::RunState>> out;
  for (auto it = entries_.upper_bound(after); it != entries_.end(); ++it) {
    out.push_back(it->second.state);
  }
  return out;
}

std::size_t RunTable::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t RunTable::terminal_count() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::uint64_t RunTable::evictions() const {
  MutexLock lock(mutex_);
  return evictions_;
}

}  // namespace qon::core
