#include "core/pending_queue.hpp"

#include <algorithm>

namespace qon::core {

void PendingQuantumTask::complete(int qpu, double now) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assigned_qpu = qpu;
    dispatched_at = now;
    done_ = true;
  }
  cv_.notify_all();
}

void PendingQuantumTask::fail(api::Status status, double now) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = std::move(status);
    dispatched_at = now;
    done_ = true;
  }
  cv_.notify_all();
}

void PendingQuantumTask::await() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
}

PendingQueue::PendingQueue(std::size_t capacity) : capacity_(capacity) {}

bool PendingQueue::push(Item item) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    producer_cv_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_watermark_ = std::max(high_watermark_, items_.size());
  }
  consumer_cv_.notify_one();
  return true;
}

std::vector<PendingQueue::Item> PendingQueue::take_batch(std::size_t max) {
  std::vector<Item> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n =
        (max == 0) ? items_.size() : std::min(max, items_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }
  producer_cv_.notify_all();
  return batch;
}

void PendingQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

bool PendingQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t PendingQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

std::size_t PendingQueue::high_watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_watermark_;
}

PendingQueue::Wake PendingQueue::wait_for_batch(std::size_t threshold,
                                                std::chrono::milliseconds linger) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Phase 1: sleep until there is any work at all (or the queue closes).
  // An empty queue never fires a cycle, so there is no deadline here.
  consumer_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return Wake::kClosed;
  if (closed_) return Wake::kFlush;
  if (items_.size() >= threshold) return Wake::kThreshold;
  // Phase 2: give the batch `linger` to fill up to the threshold; the
  // single-consumer invariant means items_ cannot shrink underneath us.
  const auto deadline = std::chrono::steady_clock::now() + linger;
  const bool woke = consumer_cv_.wait_until(lock, deadline, [this, threshold] {
    return items_.size() >= threshold || closed_;
  });
  if (!woke) return Wake::kLinger;
  return closed_ ? Wake::kFlush : Wake::kThreshold;
}

}  // namespace qon::core
