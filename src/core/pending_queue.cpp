#include "core/pending_queue.hpp"

#include <algorithm>

namespace qon::core {

void PendingQuantumTask::complete(int qpu, double now) {
  std::function<void()> observer;
  {
    MutexLock lock(mutex_);
    if (done_) return;  // already cancelled/expired: first writer won
    assigned_qpu = qpu;
    dispatched_at = now;
    done_ = true;
    observer = std::move(on_settled_);
  }
  cv_.notify_all();
  // Outside the lock: the observer typically posts a run-engine resume
  // event, which may step the run on another thread immediately.
  if (observer) observer();
}

void PendingQuantumTask::fail(api::Status status, double now) {
  std::function<void()> observer;
  {
    MutexLock lock(mutex_);
    if (done_) return;
    error = std::move(status);
    dispatched_at = now;
    done_ = true;
    observer = std::move(on_settled_);
  }
  cv_.notify_all();
  if (observer) observer();
}

void PendingQuantumTask::on_settled(std::function<void()> callback) {
  {
    MutexLock lock(mutex_);
    if (!done_) {
      on_settled_ = std::move(callback);
      return;
    }
  }
  // Already settled (e.g. cancel raced the registration): fire immediately
  // so the caller's resume event is never lost.
  callback();
}

void PendingQuantumTask::await() {
  MutexLock lock(mutex_);
  while (!done_) cv_.wait(mutex_);
}

bool PendingQuantumTask::settled() const {
  MutexLock lock(mutex_);
  return done_;
}

PendingQueue::PendingQueue(std::size_t capacity) : capacity_(capacity) {}

std::size_t PendingQueue::size_locked() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  return total;
}

bool PendingQueue::push(Item item) {
  {
    MutexLock lock(mutex_);
    while (!closed_ && capacity_ != 0 && size_locked() >= capacity_) {
      producer_cv_.wait(mutex_);
    }
    if (closed_) return false;
    lanes_[static_cast<std::size_t>(item->priority)].push_back(std::move(item));
    high_watermark_ = std::max(high_watermark_, size_locked());
  }
  consumer_cv_.notify_one();
  return true;
}

PendingQueue::Offer PendingQueue::offer(Item item) {
  bool queued = false;
  {
    MutexLock lock(mutex_);
    if (closed_) return Offer::kClosed;
    if (capacity_ == 0 || size_locked() < capacity_) {
      lanes_[static_cast<std::size_t>(item->priority)].push_back(
          std::move(item));
      high_watermark_ = std::max(high_watermark_, size_locked());
      queued = true;
    } else {
      // Full: park on the waitlist *while still holding the queue lock* —
      // if we released it first, a racing take_batch() could drain both
      // the queue and the (still-empty) waitlist before this item landed,
      // stranding it forever (an empty queue never fires a cycle).
      MutexLock wl(waitlist_mutex_);
      waitlist_[static_cast<std::size_t>(item->priority)].push_back(
          std::move(item));
      ++waitlist_parks_;
      std::size_t depth = 0;
      for (const auto& lane : waitlist_) depth += lane.size();
      waitlist_high_watermark_ = std::max(waitlist_high_watermark_, depth);
    }
  }
  if (queued) consumer_cv_.notify_one();
  return queued ? Offer::kQueued : Offer::kWaitlisted;
}

void PendingQueue::promote_waitlist_locked(bool ignore_capacity) {
  bool promoted = false;
  {
    MutexLock wl(waitlist_mutex_);
    // Highest class first (kInteractive = last lane index), FIFO within a
    // class — the same drain order take_batch uses for the queue proper.
    for (std::size_t lane = waitlist_.size(); lane-- > 0;) {
      auto& waiters = waitlist_[lane];
      while (!waiters.empty() &&
             (ignore_capacity || capacity_ == 0 ||
              size_locked() < capacity_)) {
        lanes_[lane].push_back(std::move(waiters.front()));
        waiters.pop_front();
        high_watermark_ = std::max(high_watermark_, size_locked());
        promoted = true;
      }
    }
  }
  if (promoted) consumer_cv_.notify_one();
}

std::vector<PendingQueue::Item> PendingQueue::take_batch(std::size_t max, double now,
                                                         double aging_seconds) {
  std::vector<Item> batch;
  {
    MutexLock lock(mutex_);
    const std::size_t n =
        (max == 0) ? size_locked() : std::min(max, size_locked());
    batch.reserve(n);
    // The aged-ranking path below costs a full-queue sort; use it only
    // when some job actually exceeds the budget — the common steady state
    // (aging enabled, nobody starved) stays on the cheap strict path,
    // whose output would be identical.
    bool any_aged = false;
    if (aging_seconds > 0.0) {
      for (std::size_t lane = 0; lane + 1 < lanes_.size() && !any_aged; ++lane) {
        for (const auto& item : lanes_[lane]) {
          if (now - item->enqueued_at > aging_seconds) {
            any_aged = true;
            break;
          }
        }
      }
    }
    if (!any_aged) {
      // Strict priority order: highest class first (kInteractive = last
      // lane index), FIFO within a lane.
      for (std::size_t lane = lanes_.size(); lane-- > 0 && batch.size() < n;) {
        auto& items = lanes_[lane];
        while (!items.empty() && batch.size() < n) {
          batch.push_back(std::move(items.front()));
          items.pop_front();
        }
      }
    } else {
      // Aging on: rank every queued item by (effective lane desc, enqueue
      // time asc). An item whose wait exceeds the aging budget is promoted
      // one lane for this ranking only. The sort is stable over a
      // lane-desc/FIFO collection order, so ties reproduce the no-aging
      // order exactly.
      struct Candidate {
        std::size_t effective;
        std::size_t lane;
        std::size_t index;
        double enqueued_at;  ///< copied so the comparator reads no guarded state
      };
      std::vector<Candidate> candidates;
      candidates.reserve(size_locked());
      for (std::size_t lane = lanes_.size(); lane-- > 0;) {
        for (std::size_t i = 0; i < lanes_[lane].size(); ++i) {
          std::size_t effective = lane;
          if (lane + 1 < lanes_.size() &&
              now - lanes_[lane][i]->enqueued_at > aging_seconds) {
            effective = lane + 1;
          }
          candidates.push_back({effective, lane, i, lanes_[lane][i]->enqueued_at});
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         if (a.effective != b.effective) return a.effective > b.effective;
                         return a.enqueued_at < b.enqueued_at;
                       });
      candidates.resize(n);
      for (const auto& c : candidates) batch.push_back(lanes_[c.lane][c.index]);
      // Compact each touched lane in one pass (middle-of-deque erases
      // would make a big cycle quadratic under the queue lock).
      std::array<std::vector<std::size_t>, api::kNumPriorities> taken;
      for (const auto& c : candidates) taken[c.lane].push_back(c.index);
      for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        if (taken[lane].empty()) continue;
        std::sort(taken[lane].begin(), taken[lane].end());
        std::deque<Item> kept;
        std::size_t next = 0;  // cursor into the sorted taken indices
        for (std::size_t i = 0; i < lanes_[lane].size(); ++i) {
          if (next < taken[lane].size() && taken[lane][next] == i) {
            ++next;
          } else {
            kept.push_back(std::move(lanes_[lane][i]));
          }
        }
        lanes_[lane] = std::move(kept);
      }
    }
    // Refill freed slots from the capacity waitlist before any blocked
    // producer can race in — waitlisted offers arrived first.
    promote_waitlist_locked();
  }
  producer_cv_.notify_all();
  return batch;
}

std::vector<PendingQueue::Item> PendingQueue::take_expired(double now) {
  std::vector<Item> expired;
  {
    MutexLock lock(mutex_);
    for (auto& lane : lanes_) {
      for (auto it = lane.begin(); it != lane.end();) {
        // Inclusive boundary: dispatch exactly at the deadline leaves zero
        // slack, which the at/before contract counts as a miss — matching
        // the submit-time admission check.
        if ((*it)->deadline_seconds && *(*it)->deadline_seconds <= now) {
          expired.push_back(std::move(*it));
          it = lane.erase(it);
        } else {
          ++it;
        }
      }
    }
    {
      // A waitlisted job's deadline keeps ticking while it waits for a
      // capacity slot — sweep the waitlist too so it fails DEADLINE_EXCEEDED
      // this cycle instead of after an arbitrarily long park.
      MutexLock wl(waitlist_mutex_);
      for (auto& lane : waitlist_) {
        for (auto it = lane.begin(); it != lane.end();) {
          if ((*it)->deadline_seconds && *(*it)->deadline_seconds <= now) {
            expired.push_back(std::move(*it));
            it = lane.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    promote_waitlist_locked();
  }
  if (!expired.empty()) producer_cv_.notify_all();
  return expired;
}

bool PendingQueue::remove(const Item& item) {
  bool removed = false;
  {
    MutexLock lock(mutex_);
    auto& lane = lanes_[static_cast<std::size_t>(item->priority)];
    const auto it = std::find(lane.begin(), lane.end(), item);
    if (it != lane.end()) {
      lane.erase(it);
      removed = true;
      promote_waitlist_locked();
    } else {
      // Not queued — a cancelled run's task may still be parked on the
      // capacity waitlist. Pulling it from there frees no queue slot, so no
      // promotion follows.
      MutexLock wl(waitlist_mutex_);
      auto& waiters = waitlist_[static_cast<std::size_t>(item->priority)];
      const auto wit = std::find(waiters.begin(), waiters.end(), item);
      if (wit != waiters.end()) {
        waiters.erase(wit);
        removed = true;
      }
    }
  }
  if (removed) producer_cv_.notify_all();
  return removed;
}

void PendingQueue::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
    // Promote every waitlisted item regardless of capacity so the final
    // shutdown flush drains them — each gets a terminal verdict (dispatch
    // or typed failure) instead of vanishing with the queue.
    promote_waitlist_locked(/*ignore_capacity=*/true);
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
}

bool PendingQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

std::size_t PendingQueue::size() const {
  MutexLock lock(mutex_);
  return size_locked();
}

std::size_t PendingQueue::high_watermark() const {
  MutexLock lock(mutex_);
  return high_watermark_;
}

std::size_t PendingQueue::waitlist_depth() const {
  MutexLock wl(waitlist_mutex_);
  std::size_t depth = 0;
  for (const auto& lane : waitlist_) depth += lane.size();
  return depth;
}

std::size_t PendingQueue::waitlist_high_watermark() const {
  MutexLock wl(waitlist_mutex_);
  return waitlist_high_watermark_;
}

std::uint64_t PendingQueue::waitlist_parks() const {
  MutexLock wl(waitlist_mutex_);
  return waitlist_parks_;
}

double PendingQueue::oldest_wait_seconds(double now) const {
  double oldest_enqueue = -1.0;
  MutexLock lock(mutex_);
  for (const auto& lane : lanes_) {
    for (const Item& item : lane) {
      if (oldest_enqueue < 0.0 || item->enqueued_at < oldest_enqueue) {
        oldest_enqueue = item->enqueued_at;
      }
    }
  }
  {
    MutexLock wl(waitlist_mutex_);
    for (const auto& lane : waitlist_) {
      for (const Item& item : lane) {
        if (oldest_enqueue < 0.0 || item->enqueued_at < oldest_enqueue) {
          oldest_enqueue = item->enqueued_at;
        }
      }
    }
  }
  if (oldest_enqueue < 0.0) return 0.0;
  return std::max(0.0, now - oldest_enqueue);
}

PendingQueue::Wake PendingQueue::wait_for_batch(std::size_t threshold,
                                                std::chrono::milliseconds linger) {
  MutexLock lock(mutex_);
  for (;;) {
    // Phase 1: sleep until there is any work at all (or the queue closes).
    // An empty queue never fires a cycle, so there is no deadline here.
    while (size_locked() == 0 && !closed_) consumer_cv_.wait(mutex_);
    if (closed_) return size_locked() > 0 ? Wake::kFlush : Wake::kClosed;
    if (size_locked() >= threshold) return Wake::kThreshold;
    // Phase 2: give the batch `linger` to fill up to the threshold.
    const auto deadline = std::chrono::steady_clock::now() + linger;
    bool timed_out = false;
    while (size_locked() < threshold && !closed_) {
      if (consumer_cv_.wait_until(mutex_, deadline) == std::cv_status::timeout &&
          size_locked() < threshold && !closed_) {
        timed_out = true;
        break;
      }
    }
    if (!timed_out) return closed_ ? Wake::kFlush : Wake::kThreshold;
    // remove() can drain the queue sideways while we linger (a cancelled
    // run's task leaving before dispatch); an empty linger expiry is not a
    // cycle — go back to sleeping for work.
    if (size_locked() > 0) return Wake::kLinger;
  }
}

}  // namespace qon::core
