#pragma once
// The pending-job queue of the scheduler service (§7, Fig. 5): quantum
// tasks from in-flight runs park here instead of executing immediately, and
// the scheduler thread drains them in batches when a scheduling cycle
// fires. The queue is bounded with two producer disciplines: push() blocks
// while the queue is full (legacy/synchronous producers), while offer() is
// non-blocking — a full queue parks the item on a capacity waitlist that
// drains FIFO-by-priority into freed slots, so an engine worker never
// convoys on a flooded queue. The queue owns the wait primitive the
// scheduler thread sleeps on: wake on reaching the queue-size threshold, on
// a linger timeout with work waiting, or on close() for the final shutdown
// flush.
//
// Batches form in priority order (api::Priority): kInteractive items take
// a cycle's slots before kStandard, which take them before kBatch — FIFO
// within one class. Parked items can also leave the queue sideways:
// remove() pulls a cancelled run's task out before it is dispatched, and
// take_expired() collects items whose QoS deadline passed so the cycle can
// fail them DEADLINE_EXCEEDED instead of scheduling them.
//
// One producer-side executor thread pushes one PendingQuantumTask per
// quantum task and blocks on it until the scheduler either assigns a QPU or
// fails the task (typed api::Status, e.g. RESOURCE_EXHAUSTED when no online
// QPU fits). There is exactly one consumer — the scheduler thread — so a
// non-empty queue observed by wait_for_batch() stays non-empty until the
// following take_batch()/take_expired().

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::obs {
class RunTraceBuffer;  // obs/trace.hpp — opaque here, see `trace` below
}  // namespace qon::obs

namespace qon::core {

/// One quantum task parked between its run's executor and the scheduler
/// service. The executor fills the request half before push() (the
/// per-backend estimates are precomputed off-lock so scheduling cycles stay
/// cheap), blocks in await(), and the first of {complete, fail} wins — a
/// late completion of a task that was already cancelled or expired is a
/// no-op.
struct PendingQuantumTask {
  // ---- request half: written by the executor before push() -------------------
  api::RunId run = 0;
  std::string task_name;
  int qubits = 0;
  int shots = 0;
  double ready_at = 0.0;    ///< DAG-dependency ready time (fleet clock)
  double enqueued_at = 0.0; ///< fleet clock at push (queue-wait accounting)
  // Per-job QoS (resolved by the orchestrator against config defaults).
  double fidelity_weight = 0.5;            ///< MCDM preference for this job
  std::optional<double> deadline_seconds;  ///< fleet-clock deadline, if any
  api::Priority priority = api::Priority::kStandard;
  /// Per-backend estimates, indexed like Fleet::backends — the rows of the
  /// cycle's sched::SchedulingInput.
  std::vector<double> est_fidelity;
  std::vector<double> est_exec_seconds;
  /// The run's span ring (null when tracing is off). Part of the request
  /// half — written before the task is offered, so the scheduler thread
  /// reads it under the same happens-before the other request fields ride
  /// (the queue's lock hand-off). The cycle records queue_wait / stage
  /// spans into it BEFORE settling the task.
  std::shared_ptr<obs::RunTraceBuffer> trace;
  /// Wall clock (tracer µs) at offer time — the wall start of the
  /// queue_wait span, paired with the virtual `enqueued_at`.
  double enqueued_wall_us = 0.0;

  // ---- completion half: first writer wins ------------------------------------
  /// Assigns QPU `qpu` at virtual time `now` and wakes the executor.
  /// No-op if the task already settled (e.g. cancelled while parked).
  void complete(int qpu, double now);
  /// Fails the task with `status` at virtual time `now` and wakes the
  /// executor; the run ends carrying this status. No-op once settled.
  void fail(api::Status status, double now);
  /// Executor side: blocks until complete()/fail(). After it returns,
  /// assigned_qpu / dispatched_at / error are stable and safe to read
  /// without the lock.
  void await();
  /// Non-blocking alternative to await(): registers an observer invoked
  /// exactly once, outside the task's lock, by whichever of complete()/
  /// fail() wins — or immediately in the caller's thread when the task has
  /// already settled. After it fires, assigned_qpu / dispatched_at / error
  /// are stable. The run engine uses this to post a resume event instead of
  /// parking a thread. At most one callback may be registered per task.
  void on_settled(std::function<void()> callback);
  /// Whether complete()/fail() already happened. A settled item still
  /// physically queued is skipped by the next cycle.
  bool settled() const;

  // The verdict fields are deliberately NOT guarded_by(mutex_): they are
  // written exactly once, under mutex_, before done_ flips, and the await()/
  // on_settled() contract (release on the settling unlock, acquire on the
  // reader's lock/callback) makes them stable afterwards — readers access
  // them lock-free only after settlement. Annotating them would force every
  // post-settlement read through the lock for no added safety.
  int assigned_qpu = -1;      ///< valid iff error.ok()
  double dispatched_at = 0.0; ///< fleet clock when the cycle fired
  api::Status error;

 private:
  mutable Mutex mutex_{LockRank::kPendingTask, "PendingQuantumTask::mutex_"};
  CondVar cv_;
  /// Armed until settlement fires it (outside mutex_ — it acquires the
  /// run engine's lock).
  std::function<void()> on_settled_ GUARDED_BY(mutex_);
  bool done_ GUARDED_BY(mutex_) = false;
};

/// Bounded, thread-safe priority queue of pending quantum tasks: one FIFO
/// lane per api::Priority, drained highest class first. Thread-safety: any
/// number of producers, one consumer (the scheduler thread); remove() may
/// be called from any thread.
class PendingQueue {
 public:
  using Item = std::shared_ptr<PendingQuantumTask>;

  /// Why wait_for_batch() woke up.
  enum class Wake {
    kThreshold, ///< the queue reached the caller's threshold
    kLinger,    ///< non-empty, but the linger budget elapsed first
    kFlush,     ///< close() arrived with items still queued: final drain
    kClosed,    ///< closed and empty — no more work will ever arrive
  };

  /// `capacity` bounds the queue; pushes block while it is full. 0 means
  /// unbounded.
  explicit PendingQueue(std::size_t capacity = 0);

  /// Enqueues `item` in its priority lane, blocking while the queue is at
  /// capacity. Returns false once close()d — the item was not queued and
  /// never will be.
  bool push(Item item);

  /// Outcome of a non-blocking offer().
  enum class Offer {
    kQueued,     ///< enqueued in its priority lane, counts toward size()
    kWaitlisted, ///< queue full: parked on the capacity waitlist
    kClosed,     ///< the queue was close()d — the item was not accepted
  };

  /// Non-blocking push for engine workers: enqueues when a capacity slot is
  /// free, otherwise parks the item on the capacity waitlist (it does NOT
  /// count toward size()). Waitlisted items promote into the queue
  /// FIFO-by-priority as take_batch()/take_expired()/remove() free slots —
  /// the caller's on_settled observer fires when a later cycle dispatches
  /// the promoted item, exactly as for a directly queued one. The full-check
  /// and the waitlist insert are atomic under the queue lock, so an item can
  /// never be stranded between an emptying queue and a not-yet-parked offer.
  Offer offer(Item item);

  /// Pops up to `max` items (0 = everything queued): kInteractive first,
  /// then kStandard, then kBatch, FIFO within each lane.
  ///
  /// Priority aging (`aging_seconds` > 0): an item whose virtual wait at
  /// `now` exceeds the aging budget competes one lane above its own for
  /// this batch's slots — kBatch as kStandard, kStandard as kInteractive
  /// (its `priority` field, and therefore the per-class stats, keep the
  /// native class). Within one effective lane, older enqueue times win, so
  /// an aged job beats a sustained stream of fresh native jobs instead of
  /// joining the back of their lane. 0 disables aging (the default).
  std::vector<Item> take_batch(std::size_t max = 0, double now = 0.0,
                               double aging_seconds = 0.0);

  /// Removes and returns every item (queued or waitlisted) whose
  /// deadline_seconds lies at or before `now` — called at cycle start so
  /// expired jobs fail DEADLINE_EXCEEDED instead of consuming batch slots
  /// and QPUs. The boundary is inclusive: a job dispatched exactly at its
  /// deadline has zero slack, which the at/before contract counts as a miss
  /// (matching the submit-time admission check).
  std::vector<Item> take_expired(double now);

  /// Removes this exact item (pointer identity) if it is still queued or
  /// waitlisted; false when it was already taken or never pushed. Frees a
  /// capacity slot. The caller settles the item (fail) — the queue does not.
  bool remove(const Item& item);

  /// Stops accepting pushes and wakes every waiter (producers and the
  /// scheduler). Idempotent.
  void close();
  bool closed() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  /// Virtual-clock age of the oldest item parked anywhere in the queue
  /// (lanes or capacity waitlist) at `now`; 0 when nothing is parked. The
  /// queue-stall SLI: a growing oldest-wait with a beating scheduler means
  /// cycles are firing but never draining this job's class.
  double oldest_wait_seconds(double now) const;
  std::size_t capacity() const { return capacity_; }
  /// Largest size() ever observed — the Fig. 9b stability statistic.
  std::size_t high_watermark() const;

  /// Items currently parked on the capacity waitlist (not in size()).
  std::size_t waitlist_depth() const;
  /// Largest waitlist depth ever observed.
  std::size_t waitlist_high_watermark() const;
  /// Total offers that took the waitlist path since construction — the
  /// "no engine worker ever blocked in push" overload-control statistic.
  std::uint64_t waitlist_parks() const;

  /// Scheduler-side wait. Blocks until the queue holds at least
  /// `threshold` items (kThreshold), or is non-empty once `linger` has
  /// elapsed from the first item observed (kLinger), or close() happened
  /// (kFlush when items remain, kClosed when the queue is empty for good).
  Wake wait_for_batch(std::size_t threshold, std::chrono::milliseconds linger);

 private:
  // Priority lanes, drained highest first. Indexed by api::Priority.
  using Lanes = std::array<std::deque<Item>, api::kNumPriorities>;

  std::size_t size_locked() const REQUIRES(mutex_);

  /// Moves waitlisted items into their queue lanes, highest class first and
  /// FIFO within a class, while capacity allows (`ignore_capacity` lifts the
  /// bound for the close() flush). Runs under the queue lock so a freed slot
  /// and its refill are one atomic step; wakes the scheduler when anything
  /// promotes.
  void promote_waitlist_locked(bool ignore_capacity = false) REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_{LockRank::kPendingQueue, "PendingQueue::mutex_"};
  CondVar producer_cv_; ///< producers waiting for space
  CondVar consumer_cv_; ///< the scheduler thread
  Lanes lanes_ GUARDED_BY(mutex_);
  std::size_t high_watermark_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;

  /// Capacity waitlist: offers that found the queue full park here instead
  /// of blocking their thread. Its mutex ranks inside kPendingQueue (see
  /// LockRank::kQueueWaitlist) — every access nests under mutex_ except the
  /// three read-only accessors.
  mutable Mutex waitlist_mutex_{LockRank::kQueueWaitlist,
                                "PendingQueue::waitlist_mutex_"};
  Lanes waitlist_ GUARDED_BY(waitlist_mutex_);
  std::size_t waitlist_high_watermark_ GUARDED_BY(waitlist_mutex_) = 0;
  std::uint64_t waitlist_parks_ GUARDED_BY(waitlist_mutex_) = 0;
};

}  // namespace qon::core
