#include "raft/cluster.hpp"

#include <stdexcept>

namespace qon::raft {

RaftCluster::RaftCluster(std::size_t size, RaftConfig config, NetworkConfig net,
                         std::uint64_t seed)
    : config_(config), network_(net) {
  if (size < 3 || size % 2 == 0) {
    throw std::invalid_argument("RaftCluster: size must be odd and >= 3 (2f+1)");
  }
  std::vector<NodeId> peers;
  for (std::size_t i = 0; i < size; ++i) peers.push_back(static_cast<NodeId>(i));
  applied_.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(
        static_cast<NodeId>(i), peers, config, seed + i,
        [this, i](LogIndex, const std::string& cmd) { applied_[i].push_back(cmd); }));
  }
}

void RaftCluster::pump(std::vector<Message>& out) {
  for (auto& m : out) network_.send(std::move(m));
  out.clear();
}

void RaftCluster::step() {
  std::vector<Message> out;
  for (auto& node : nodes_) {
    node->tick(out);
    pump(out);
  }
  for (auto& message : network_.tick()) {
    const auto to = static_cast<std::size_t>(message.to);
    if (to >= nodes_.size()) continue;
    nodes_[to]->deliver(message, out);
    pump(out);
  }
}

void RaftCluster::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

std::optional<NodeId> RaftCluster::run_until_leader(std::size_t max_steps) {
  for (std::size_t i = 0; i < max_steps; ++i) {
    step();
    if (const auto l = leader()) return l;
  }
  return std::nullopt;
}

std::optional<NodeId> RaftCluster::leader() const {
  std::optional<NodeId> best;
  Term best_term = 0;
  for (const auto& node : nodes_) {
    if (!node->crashed() && node->role() == Role::kLeader && node->term() >= best_term) {
      best = node->id();
      best_term = node->term();
    }
  }
  return best;
}

bool RaftCluster::propose_and_commit(const std::string& command, std::size_t max_steps) {
  auto l = leader();
  if (!l) l = run_until_leader(max_steps);
  if (!l) return false;
  std::vector<Message> out;
  const auto index = nodes_[static_cast<std::size_t>(*l)]->propose(command, out);
  pump(out);
  if (!index) return false;
  for (std::size_t i = 0; i < max_steps; ++i) {
    step();
    std::size_t committed = 0;
    for (const auto& node : nodes_) {
      if (!node->crashed() && node->commit_index() >= *index) ++committed;
    }
    if (committed >= nodes_.size() / 2 + 1) return true;
  }
  return false;
}

}  // namespace qon::raft
