#include "raft/node.hpp"

#include <algorithm>
#include <stdexcept>

namespace qon::raft {

const char* role_name(Role role) {
  switch (role) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

RaftNode::RaftNode(NodeId id, std::vector<NodeId> peers, RaftConfig config, std::uint64_t seed,
                   ApplyCallback apply)
    : id_(id), peers_(std::move(peers)), config_(config), rng_(seed), apply_(std::move(apply)) {
  if (std::find(peers_.begin(), peers_.end(), id_) == peers_.end()) {
    throw std::invalid_argument("RaftNode: own id missing from peer list");
  }
  if (config.election_timeout_min_ticks < 2 ||
      config.election_timeout_max_ticks < config.election_timeout_min_ticks) {
    throw std::invalid_argument("RaftNode: bad election timeout bounds");
  }
  reset_election_timer();
}

void RaftNode::reset_election_timer() {
  election_timer_ = static_cast<int>(rng_.uniform_int(config_.election_timeout_min_ticks,
                                                      config_.election_timeout_max_ticks));
}

void RaftNode::become_follower(Term term) {
  role_ = Role::kFollower;
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
  }
  reset_election_timer();
}

void RaftNode::become_candidate(std::vector<Message>& out) {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id_;
  votes_received_ = 1;  // own vote
  reset_election_timer();
  RequestVote rv;
  rv.term = term_;
  rv.candidate = id_;
  rv.last_log_index = last_log_index();
  rv.last_log_term = last_log_term();
  for (NodeId peer : peers_) {
    if (peer == id_) continue;
    out.push_back({id_, peer, rv});
  }
}

void RaftNode::become_leader(std::vector<Message>& out) {
  role_ = Role::kLeader;
  next_index_.assign(peers_.size(), last_log_index() + 1);
  match_index_.assign(peers_.size(), 0);
  heartbeat_timer_ = 0;
  broadcast_append_entries(out);  // immediate heartbeat asserts leadership
}

void RaftNode::tick(std::vector<Message>& out) {
  if (crashed_) return;
  if (role_ == Role::kLeader) {
    if (++heartbeat_timer_ >= config_.heartbeat_interval_ticks) {
      heartbeat_timer_ = 0;
      broadcast_append_entries(out);
    }
    return;
  }
  // Follower / candidate: detect leader failure via heartbeat silence
  // exceeding the (randomized) Δ-derived timeout.
  if (--election_timer_ <= 0) become_candidate(out);
}

void RaftNode::broadcast_append_entries(std::vector<Message>& out) {
  for (NodeId peer : peers_) {
    if (peer == id_) continue;
    send_append_entries(peer, out);
  }
}

void RaftNode::send_append_entries(NodeId peer, std::vector<Message>& out) {
  const std::size_t pi = static_cast<std::size_t>(
      std::find(peers_.begin(), peers_.end(), peer) - peers_.begin());
  AppendEntries ae;
  ae.term = term_;
  ae.leader = id_;
  ae.prev_log_index = next_index_[pi] - 1;
  ae.prev_log_term =
      ae.prev_log_index == 0 ? 0 : log_[static_cast<std::size_t>(ae.prev_log_index) - 1].term;
  for (LogIndex i = next_index_[pi]; i <= last_log_index(); ++i) {
    ae.entries.push_back(log_[static_cast<std::size_t>(i) - 1]);
  }
  ae.leader_commit = commit_index_;
  out.push_back({id_, peer, ae});
}

void RaftNode::deliver(const Message& message, std::vector<Message>& out) {
  if (crashed_) return;
  std::visit(
      [&](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, RequestVote>) {
          if (payload.term > term_) become_follower(payload.term);
          RequestVoteReply reply;
          reply.term = term_;
          const bool log_ok =
              payload.last_log_term > last_log_term() ||
              (payload.last_log_term == last_log_term() &&
               payload.last_log_index >= last_log_index());
          if (payload.term == term_ && log_ok &&
              (!voted_for_ || *voted_for_ == payload.candidate)) {
            voted_for_ = payload.candidate;
            reply.granted = true;
            reset_election_timer();
          }
          out.push_back({id_, message.from, reply});
        } else if constexpr (std::is_same_v<T, RequestVoteReply>) {
          if (role_ != Role::kCandidate || payload.term != term_) {
            if (payload.term > term_) become_follower(payload.term);
            return;
          }
          if (payload.granted && ++votes_received_ >= majority()) {
            become_leader(out);
          }
        } else if constexpr (std::is_same_v<T, AppendEntries>) {
          AppendEntriesReply reply;
          if (payload.term < term_) {
            reply.term = term_;
            reply.success = false;
            out.push_back({id_, message.from, reply});
            return;
          }
          become_follower(payload.term);
          reply.term = term_;
          // Log matching check at prev_log_index.
          const bool prev_ok =
              payload.prev_log_index == 0 ||
              (payload.prev_log_index <= last_log_index() &&
               log_[static_cast<std::size_t>(payload.prev_log_index) - 1].term ==
                   payload.prev_log_term);
          if (!prev_ok) {
            reply.success = false;
            out.push_back({id_, message.from, reply});
            return;
          }
          // Append / overwrite conflicting suffix.
          LogIndex index = payload.prev_log_index;
          for (const auto& entry : payload.entries) {
            ++index;
            if (index <= last_log_index()) {
              if (log_[static_cast<std::size_t>(index) - 1].term != entry.term) {
                log_.resize(static_cast<std::size_t>(index) - 1);
                log_.push_back(entry);
              }
            } else {
              log_.push_back(entry);
            }
          }
          if (payload.leader_commit > commit_index_) {
            commit_index_ = std::min<LogIndex>(payload.leader_commit, last_log_index());
            apply_committed();
          }
          reply.success = true;
          reply.match_index = index;
          out.push_back({id_, message.from, reply});
        } else if constexpr (std::is_same_v<T, AppendEntriesReply>) {
          if (payload.term > term_) {
            become_follower(payload.term);
            return;
          }
          if (role_ != Role::kLeader || payload.term != term_) return;
          const std::size_t pi = static_cast<std::size_t>(
              std::find(peers_.begin(), peers_.end(), message.from) - peers_.begin());
          if (pi >= peers_.size()) return;
          if (payload.success) {
            match_index_[pi] = std::max(match_index_[pi], payload.match_index);
            next_index_[pi] = match_index_[pi] + 1;
            advance_commit();
          } else {
            // Back off and retry immediately.
            if (next_index_[pi] > 1) --next_index_[pi];
            send_append_entries(message.from, out);
          }
        }
      },
      message.payload);
}

std::optional<LogIndex> RaftNode::propose(const std::string& command,
                                          std::vector<Message>& out) {
  if (crashed_ || role_ != Role::kLeader) return std::nullopt;
  log_.push_back({term_, command});
  const std::size_t self = static_cast<std::size_t>(
      std::find(peers_.begin(), peers_.end(), id_) - peers_.begin());
  match_index_[self] = last_log_index();
  broadcast_append_entries(out);
  advance_commit();
  return last_log_index();
}

void RaftNode::advance_commit() {
  // Find the highest index replicated on a majority with an entry from the
  // current term (Raft's commit rule).
  for (LogIndex n = last_log_index(); n > commit_index_; --n) {
    if (log_[static_cast<std::size_t>(n) - 1].term != term_) break;
    std::size_t count = 0;
    for (std::size_t pi = 0; pi < peers_.size(); ++pi) {
      if (peers_[pi] == id_ || match_index_[pi] >= n) ++count;
    }
    if (count >= majority()) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (apply_) apply_(last_applied_, log_[static_cast<std::size_t>(last_applied_) - 1].command);
  }
}

void RaftNode::crash() { crashed_ = true; }

void RaftNode::restart() {
  crashed_ = false;
  role_ = Role::kFollower;
  votes_received_ = 0;
  // Volatile applied state rebuilds from the (persistent) log.
  commit_index_ = 0;
  last_applied_ = 0;
  reset_election_timer();
}

}  // namespace qon::raft
