#include "raft/kv_store.hpp"

#include <sstream>
#include <stdexcept>

namespace qon::raft {

ReplicatedKvStore::ReplicatedKvStore(std::size_t replicas, std::uint64_t seed)
    : cluster_(replicas, RaftConfig{}, NetworkConfig{}, seed),
      views_(replicas),
      applied_upto_(replicas, 0) {}

std::string ReplicatedKvStore::encode(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case ' ': out += "%20"; break;
      case '\n': out += "%0a"; break;
      case '%': out += "%25"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ReplicatedKvStore::decode(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] == '%' && i + 2 < encoded.size()) {
      const std::string hex = encoded.substr(i + 1, 2);
      if (hex == "20") {
        out += ' ';
        i += 2;
        continue;
      }
      if (hex == "0a") {
        out += '\n';
        i += 2;
        continue;
      }
      if (hex == "25") {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += encoded[i];
  }
  return out;
}

bool ReplicatedKvStore::set(const std::string& key, const std::string& value) {
  if (!cluster_.propose_and_commit("set " + encode(key) + " " + encode(value))) return false;
  // Let heartbeats propagate the commit index so every replica applies the
  // entry before the caller reads it back.
  cluster_.run(64);
  return true;
}

bool ReplicatedKvStore::erase(const std::string& key) {
  if (!cluster_.propose_and_commit("del " + encode(key))) return false;
  cluster_.run(64);
  return true;
}

void ReplicatedKvStore::catch_up(std::size_t replica) const {
  const auto& commands = cluster_.applied(replica);
  auto& view = views_[replica];
  for (std::size_t i = applied_upto_[replica]; i < commands.size(); ++i) {
    std::istringstream in(commands[i]);
    std::string op;
    std::string key;
    in >> op >> key;
    key = decode(key);
    if (op == "set") {
      std::string value;
      in >> value;
      view[key] = decode(value);
    } else if (op == "del") {
      view.erase(key);
    }
  }
  applied_upto_[replica] = commands.size();
}

std::optional<std::string> ReplicatedKvStore::get(const std::string& key,
                                                  std::size_t replica) const {
  if (replica >= views_.size()) throw std::out_of_range("ReplicatedKvStore::get");
  catch_up(replica);
  const auto it = views_[replica].find(key);
  if (it == views_[replica].end()) return std::nullopt;
  return it->second;
}

std::size_t ReplicatedKvStore::size(std::size_t replica) const {
  if (replica >= views_.size()) throw std::out_of_range("ReplicatedKvStore::size");
  catch_up(replica);
  return views_[replica].size();
}

void ReplicatedKvStore::materialize() {
  for (std::size_t r = 0; r < views_.size(); ++r) catch_up(r);
}

}  // namespace qon::raft
