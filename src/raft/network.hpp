#pragma once
// Simulated partially synchronous network (§4.1): messages experience
// random bounded delays (measured in ticks), may be dropped, and pairs of
// nodes can be partitioned for fault-injection tests.

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "raft/message.hpp"

namespace qon::raft {

struct NetworkConfig {
  int min_delay_ticks = 1;
  int max_delay_ticks = 3;   ///< Δ bound after GST (partial synchrony)
  double drop_probability = 0.0;
  std::uint64_t seed = 99;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig config = {});

  /// Queues a message for future delivery (or drops it).
  void send(Message message);

  /// Advances one tick and returns the messages due for delivery.
  std::vector<Message> tick();

  /// Blocks both directions between a and b until heal().
  void partition(NodeId a, NodeId b);
  /// Removes all partitions.
  void heal();
  /// True when (a, b) cannot communicate.
  bool partitioned(NodeId a, NodeId b) const;

  std::uint64_t now() const { return now_; }
  std::size_t in_flight() const { return queue_.size(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct InFlight {
    std::uint64_t deliver_at;
    Message message;
  };

  NetworkConfig config_;
  Rng rng_;
  std::uint64_t now_ = 0;
  std::vector<InFlight> queue_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::uint64_t dropped_ = 0;
};

}  // namespace qon::raft
