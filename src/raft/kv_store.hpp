#pragma once
// Replicated key-value store: the state machine behind Qonductor's system
// monitor (§4.1). Commands are "set <key> <value>" / "del <key>"; the store
// wraps a RaftCluster and exposes linearizable-ish writes (commit-gated)
// plus local reads from any replica.
//
// Thread-compatibility contract: the whole raft:: layer (ReplicatedKvStore,
// RaftCluster, RaftNode) is a deterministic single-threaded simulation and
// holds NO locks of its own — even const reads mutate the materialized
// views (catch_up). Callers must serialize every access externally; in the
// serving path that caller is core::SystemMonitor, whose mutex_
// (LockRank::kMonitor) guards the store_ pointer and therefore every call
// into this layer.

#include <map>
#include <optional>
#include <string>

#include "raft/cluster.hpp"

namespace qon::raft {

class ReplicatedKvStore {
 public:
  explicit ReplicatedKvStore(std::size_t replicas = 3, std::uint64_t seed = 11);

  /// Writes through the leader; returns false if no leader emerged or the
  /// command failed to commit within the step budget.
  bool set(const std::string& key, const std::string& value);
  bool erase(const std::string& key);

  /// Reads from replica `replica`'s applied state (default 0).
  std::optional<std::string> get(const std::string& key, std::size_t replica = 0) const;

  /// Number of keys on a replica.
  std::size_t size(std::size_t replica = 0) const;

  RaftCluster& cluster() { return cluster_; }

  /// Re-applies every replica's committed commands into its map (used after
  /// fault injection runs to refresh the materialized views).
  void materialize();

  /// Escapes a value so it survives the space-delimited command encoding.
  static std::string encode(const std::string& raw);
  static std::string decode(const std::string& encoded);

 private:
  RaftCluster cluster_;
  mutable std::vector<std::map<std::string, std::string>> views_;
  mutable std::vector<std::size_t> applied_upto_;

  void catch_up(std::size_t replica) const;
};

}  // namespace qon::raft
