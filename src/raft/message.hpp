#pragma once
// Raft wire messages (Ongaro & Ousterhout 2014), used by the replicated
// control plane and system-monitor datastore (§4.1 fault tolerance).

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace qon::raft {

using Term = std::uint64_t;
using NodeId = int;
using LogIndex = std::uint64_t;  // 1-based; 0 means "none"

/// One replicated log entry: an opaque state-machine command.
struct LogEntry {
  Term term = 0;
  std::string command;

  bool operator==(const LogEntry&) const = default;
};

struct RequestVote {
  Term term = 0;
  NodeId candidate = -1;
  LogIndex last_log_index = 0;
  Term last_log_term = 0;
};

struct RequestVoteReply {
  Term term = 0;
  bool granted = false;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = -1;
  LogIndex prev_log_index = 0;
  Term prev_log_term = 0;
  std::vector<LogEntry> entries;  ///< empty = heartbeat
  LogIndex leader_commit = 0;
};

struct AppendEntriesReply {
  Term term = 0;
  bool success = false;
  LogIndex match_index = 0;  ///< highest replicated index on success
};

using Payload = std::variant<RequestVote, RequestVoteReply, AppendEntries, AppendEntriesReply>;

/// An addressed message in flight.
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  Payload payload;
};

}  // namespace qon::raft
