#pragma once
// A single Raft consensus node: leader election with randomized timeouts,
// heartbeat-based failure detection, log replication and commit
// advancement. Driven synchronously by the cluster harness: deliver() for
// incoming messages, tick() once per time step.

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "raft/message.hpp"

namespace qon::raft {

enum class Role { kFollower, kCandidate, kLeader };

const char* role_name(Role role);

struct RaftConfig {
  int election_timeout_min_ticks = 10;
  int election_timeout_max_ticks = 20;
  int heartbeat_interval_ticks = 3;
};

/// Callback applying a committed command to the state machine.
using ApplyCallback = std::function<void(LogIndex, const std::string&)>;

class RaftNode {
 public:
  /// `peers` lists *all* cluster members including this node's own id.
  RaftNode(NodeId id, std::vector<NodeId> peers, RaftConfig config, std::uint64_t seed,
           ApplyCallback apply);

  NodeId id() const { return id_; }
  Role role() const { return role_; }
  Term term() const { return term_; }
  LogIndex commit_index() const { return commit_index_; }
  const std::vector<LogEntry>& log() const { return log_; }
  bool crashed() const { return crashed_; }

  /// One time step: election timeout / heartbeat bookkeeping. Outgoing
  /// messages are appended to `out`.
  void tick(std::vector<Message>& out);

  /// Handles an incoming message; replies go to `out`.
  void deliver(const Message& message, std::vector<Message>& out);

  /// Leader-only: appends a client command for replication. Returns the
  /// assigned log index, or nullopt when not leader (client must retry at
  /// the current leader).
  std::optional<LogIndex> propose(const std::string& command, std::vector<Message>& out);

  /// Fault injection: a crashed node ignores ticks and messages.
  void crash();
  /// Restarts with volatile state reset (log and term survive, as they
  /// would on persistent storage).
  void restart();

 private:
  void become_follower(Term term);
  void become_candidate(std::vector<Message>& out);
  void become_leader(std::vector<Message>& out);
  void reset_election_timer();
  void broadcast_append_entries(std::vector<Message>& out);
  void send_append_entries(NodeId peer, std::vector<Message>& out);
  void advance_commit();
  void apply_committed();

  Term last_log_term() const { return log_.empty() ? 0 : log_.back().term; }
  LogIndex last_log_index() const { return log_.size(); }
  std::size_t majority() const { return peers_.size() / 2 + 1; }

  NodeId id_;
  std::vector<NodeId> peers_;
  RaftConfig config_;
  Rng rng_;
  ApplyCallback apply_;

  Role role_ = Role::kFollower;
  Term term_ = 0;
  std::optional<NodeId> voted_for_;
  std::vector<LogEntry> log_;  // 1-based indexing: log_[i-1]
  LogIndex commit_index_ = 0;
  LogIndex last_applied_ = 0;

  int election_timer_ = 0;
  int heartbeat_timer_ = 0;
  std::size_t votes_received_ = 0;
  bool crashed_ = false;

  // Leader volatile state.
  std::vector<LogIndex> next_index_;   // per peer position
  std::vector<LogIndex> match_index_;
};

}  // namespace qon::raft
