#pragma once
// Raft cluster harness: 2f+1 nodes over a simulated network, driven in
// lock-step ticks. Provides the fault-injection controls the §4.1 tests
// exercise (crash the leader, partition nodes, heal).
//
// Thread-compatible, not thread-safe: the simulation is deterministic and
// lock-free by design; callers serialize access externally (see
// kv_store.hpp for the full contract).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "raft/network.hpp"
#include "raft/node.hpp"

namespace qon::raft {

class RaftCluster {
 public:
  /// Builds a cluster of `size` nodes (size must be odd, e.g. 2f+1 with
  /// f=1 -> 3 by default in Qonductor).
  RaftCluster(std::size_t size, RaftConfig config = {}, NetworkConfig net = {},
              std::uint64_t seed = 7);

  std::size_t size() const { return nodes_.size(); }
  RaftNode& node(std::size_t i) { return *nodes_[i]; }
  const RaftNode& node(std::size_t i) const { return *nodes_[i]; }
  SimNetwork& network() { return network_; }

  /// Advances the whole cluster one tick (node ticks + message delivery).
  void step();
  /// Runs `n` steps.
  void run(std::size_t n);
  /// Runs until a leader exists or `max_steps` elapse; returns leader id.
  std::optional<NodeId> run_until_leader(std::size_t max_steps = 2000);

  /// Current unique leader (highest-term leader if several claim it).
  std::optional<NodeId> leader() const;

  /// Proposes through the current leader; runs up to `max_steps` to commit.
  /// Returns true when a majority committed the command.
  bool propose_and_commit(const std::string& command, std::size_t max_steps = 2000);

  /// The committed command sequence observed by node i's state machine.
  const std::vector<std::string>& applied(std::size_t i) const { return applied_[i]; }

 private:
  void pump(std::vector<Message>& out);

  RaftConfig config_;
  SimNetwork network_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<std::vector<std::string>> applied_;
};

}  // namespace qon::raft
