#include "raft/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace qon::raft {

SimNetwork::SimNetwork(NetworkConfig config) : config_(config), rng_(config.seed) {
  if (config.min_delay_ticks < 1 || config.max_delay_ticks < config.min_delay_ticks) {
    throw std::invalid_argument("SimNetwork: bad delay bounds");
  }
  if (config.drop_probability < 0.0 || config.drop_probability >= 1.0) {
    throw std::invalid_argument("SimNetwork: drop probability must be in [0, 1)");
  }
}

void SimNetwork::send(Message message) {
  if (partitioned(message.from, message.to) || rng_.bernoulli(config_.drop_probability)) {
    ++dropped_;
    return;
  }
  const auto delay = static_cast<std::uint64_t>(
      rng_.uniform_int(config_.min_delay_ticks, config_.max_delay_ticks));
  queue_.push_back({now_ + delay, std::move(message)});
}

std::vector<Message> SimNetwork::tick() {
  ++now_;
  std::vector<Message> due;
  auto it = queue_.begin();
  while (it != queue_.end()) {
    if (it->deliver_at <= now_) {
      // A partition installed after send also blocks delivery.
      if (!partitioned(it->message.from, it->message.to)) {
        due.push_back(std::move(it->message));
      } else {
        ++dropped_;
      }
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

void SimNetwork::partition(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  partitions_.insert({a, b});
}

void SimNetwork::heal() { partitions_.clear(); }

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  return partitions_.count({a, b}) > 0;
}

}  // namespace qon::raft
