#include "estimator/execution_model.hpp"

#include <algorithm>
#include <cmath>

#include "mitigation/cutting.hpp"
#include "simulator/esp.hpp"

namespace qon::estimator {

namespace {

// Base (unmitigated) ESP under the given noise knowledge, with the cutting
// adjustment: fragments are ~half width so their error exponent halves;
// knitting multiplies fragment fidelities and pays the per-cut penalty.
double base_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                     const mitigation::MitigationSignature& signature,
                     const sim::HiddenNoise& hidden, double crosstalk_factor) {
  sim::EspOptions opts;
  opts.crosstalk_factor = crosstalk_factor;
  opts.delay_dephasing_residual = signature.delay_dephasing_residual;
  double base = sim::esp_fidelity(physical, backend, hidden, opts);
  if (signature.cuts_circuit) {
    const double fragment = std::sqrt(std::max(base, 1e-12));
    base = mitigation::knitted_fidelity(fragment, fragment, signature.cut_count);
  }
  return base;
}

}  // namespace

double predicted_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                          const mitigation::MitigationSignature& signature) {
  return mitigation::mitigated_fidelity(
      base_fidelity(physical, backend, signature, sim::HiddenNoise::none(), 1.0), signature);
}

double executed_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                         const mitigation::MitigationSignature& signature,
                         const sim::HiddenNoise& hidden, double crosstalk_factor, int shots,
                         Rng& rng) {
  const double mitigated = mitigation::mitigated_fidelity(
      base_fidelity(physical, backend, signature, hidden, crosstalk_factor), signature);
  const double se = std::sqrt(std::max(mitigated * (1.0 - mitigated), 1e-6) /
                              static_cast<double>(std::max(shots, 1)));
  return std::clamp(mitigated + rng.normal(0.0, se), 0.0, 1.0);
}

}  // namespace qon::estimator
