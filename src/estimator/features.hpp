#pragma once
// Feature extraction for the resource estimator's regression models (§6):
// circuit shape (width, shots, depth, two-qubit count), the mitigation
// stack applied, and — for fidelity estimation — the target backend's
// calibration summary.

#include <vector>

#include "circuit/circuit.hpp"
#include "mitigation/pipeline.hpp"
#include "qpu/backend.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::estimator {

/// The information about one (circuit, mitigation, backend, shots) job that
/// the estimators consume.
struct JobFeatures {
  // Circuit shape (of the *transpiled* circuit).
  double width = 0.0;
  double depth = 0.0;
  double two_qubit_gates = 0.0;
  double total_gates = 0.0;
  double shots = 0.0;
  double duration_single_shot = 0.0;  ///< scheduled seconds per shot
  double rep_delay = 250e-6;          ///< device repetition delay [s]

  // Mitigation one-hot.
  double zne = 0.0;
  double pec = 0.0;
  double rem = 0.0;
  double dd = 0.0;
  double twirling = 0.0;
  double cutting = 0.0;

  // Backend calibration summary (target QPU).
  double mean_gate_error_2q = 0.0;
  double mean_gate_error_1q = 0.0;
  double mean_readout_error = 0.0;
  double mean_t1 = 0.0;
  double mean_t2 = 0.0;
};

/// Extracts features from a transpile result + spec + backend.
JobFeatures extract_features(const transpiler::TranspileResult& transpiled, int shots,
                             const mitigation::MitigationSpec& spec,
                             const qpu::Backend& backend);

/// Feature vector used by the *runtime* model (circuit shape + mitigation).
std::vector<double> runtime_feature_vector(const JobFeatures& f);

/// Feature vector used by the *fidelity* model (adds calibration summary).
std::vector<double> fidelity_feature_vector(const JobFeatures& f);

/// Column counts (for matrix pre-sizing).
std::size_t runtime_feature_count();
std::size_t fidelity_feature_count();

}  // namespace qon::estimator
