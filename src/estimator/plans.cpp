#include "estimator/plans.hpp"

#include <algorithm>
#include <cmath>

#include "estimator/execution_model.hpp"
#include "estimator/numerical.hpp"
#include "moo/mcdm.hpp"
#include "moo/problem.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::estimator {

PlanSet generate_resource_plans(const circuit::Circuit& circ,
                                const std::vector<qpu::Backend>& templates,
                                const PlanConfig& config,
                                const FidelityEstimator* fidelity_model,
                                const RuntimeEstimator* runtime_model) {
  if (templates.empty()) {
    throw std::invalid_argument("generate_resource_plans: no template backends");
  }
  PlanSet result;
  const auto menu = mitigation::standard_mitigation_menu();

  for (const auto& tmpl : templates) {
    if (circ.num_qubits() > tmpl.num_qubits()) continue;  // client filter
    const auto transpiled = transpiler::transpile(circ, tmpl);
    for (const auto& spec : menu) {
      const auto sig = mitigation::compute_signature(
          spec, static_cast<std::size_t>(circ.num_qubits()),
          static_cast<std::size_t>(transpiled.circuit.depth()),
          transpiled.circuit.two_qubit_gate_count(),
          static_cast<std::size_t>(transpiled.circuit.num_clbits()),
          tmpl.calibration().mean_gate_error_2q(), mitigation::Accelerator::kCpu);
      for (const auto accel : config.accelerators) {
        // Recompute the signature for this accelerator's classical costs.
        const auto sig_a = mitigation::compute_signature(
            spec, static_cast<std::size_t>(circ.num_qubits()),
            static_cast<std::size_t>(transpiled.circuit.depth()),
            transpiled.circuit.two_qubit_gate_count(),
            static_cast<std::size_t>(transpiled.circuit.num_clbits()),
            tmpl.calibration().mean_gate_error_2q(), accel);

        ResourcePlan plan;
        plan.spec = spec;
        plan.accelerator = accel;
        plan.template_backend = tmpl.name();
        plan.delay_dephasing_residual = sig_a.delay_dephasing_residual;

        const auto features = extract_features(transpiled, config.shots, spec, tmpl);
        if (fidelity_model != nullptr && fidelity_model->trained()) {
          plan.est_fidelity = fidelity_model->estimate(features);
        } else {
          plan.est_fidelity = predicted_fidelity(transpiled.circuit, tmpl, sig_a);
        }
        if (runtime_model != nullptr && runtime_model->trained()) {
          // The model predicts a single circuit execution; the mitigation
          // stack multiplies it (instances / noise scaling).
          plan.est_quantum_seconds =
              runtime_model->estimate(features) * sig_a.quantum_runtime_multiplier;
        } else {
          plan.est_quantum_seconds =
              numerical_runtime_estimate(transpiled, config.shots, tmpl) *
              sig_a.quantum_runtime_multiplier;
        }
        plan.est_classical_seconds =
            sig_a.classical_preprocess_seconds + sig_a.classical_postprocess_seconds;
        plan.est_total_seconds = plan.est_quantum_seconds + plan.est_classical_seconds;
        plan.est_cost_dollars = job_cost_dollars(plan.est_quantum_seconds,
                                                 plan.est_classical_seconds, accel,
                                                 config.prices);
        result.all.push_back(std::move(plan));
        (void)sig;
      }
    }
  }

  // Pareto filter on (minimize total time, maximize fidelity).
  std::vector<std::vector<double>> objectives;
  objectives.reserve(result.all.size());
  for (const auto& p : result.all) {
    objectives.push_back({p.est_total_seconds, 1.0 - p.est_fidelity});
  }
  for (std::size_t idx : moo::non_dominated_indices(objectives)) {
    result.pareto.push_back(result.all[idx]);
  }
  std::sort(result.pareto.begin(), result.pareto.end(),
            [](const ResourcePlan& a, const ResourcePlan& b) {
              return a.est_total_seconds < b.est_total_seconds;
            });

  // Recommended: fastest, most faithful, and the pseudo-weight balanced pick.
  if (!result.pareto.empty()) {
    std::vector<std::size_t> picks;
    picks.push_back(0);                        // fastest
    picks.push_back(result.pareto.size() - 1); // highest fidelity (slowest end)
    std::vector<std::vector<double>> pareto_objs;
    for (const auto& p : result.pareto) {
      pareto_objs.push_back({p.est_total_seconds, 1.0 - p.est_fidelity});
    }
    picks.push_back(moo::select_by_pseudo_weight(pareto_objs, {0.5, 0.5}));
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    for (std::size_t i : picks) {
      if (result.recommended.size() >= config.max_recommended) break;
      result.recommended.push_back(result.pareto[i]);
    }
  }
  return result;
}

}  // namespace qon::estimator
