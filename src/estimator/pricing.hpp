#pragma once
// Cloud pricing model (paper Table 1): $/task and $/hour for standard VMs,
// high-end VMs and QPUs. The resource estimator uses it to attach a dollar
// cost to every resource plan.

#include <string>

#include "mitigation/pipeline.hpp"

namespace qon::estimator {

/// Resource classes priced in Table 1.
enum class ResourceClass { kStandardVm, kHighEndVm, kQpu };

const char* resource_class_name(ResourceClass r);

/// Price table; defaults sit inside the ranges reported in Table 1.
struct PriceTable {
  double standard_vm_per_task = 0.5;   ///< "<1$"
  double standard_vm_per_hour = 3.0;   ///< "1-5$"
  double highend_vm_per_task = 5.0;    ///< "1-10$"
  double highend_vm_per_hour = 25.0;   ///< "10-40$"
  double qpu_per_task = 100.0;         ///< "30-200$"
  double qpu_per_hour = 4500.0;        ///< "3000-6000$"

  double per_task(ResourceClass r) const;
  double per_hour(ResourceClass r) const;
};

/// VM class an accelerator choice implies (GPU/FPGA nodes are high-end).
ResourceClass vm_class_for(mitigation::Accelerator accelerator);

/// Dollar cost of one hybrid job execution: metered QPU seconds plus
/// metered VM seconds on the accelerator's class (per-hour pricing).
double job_cost_dollars(double quantum_seconds, double classical_seconds,
                        mitigation::Accelerator accelerator, const PriceTable& prices = {});

}  // namespace qon::estimator
