#include "estimator/pricing.hpp"

#include <stdexcept>

namespace qon::estimator {

const char* resource_class_name(ResourceClass r) {
  switch (r) {
    case ResourceClass::kStandardVm: return "standard-vm";
    case ResourceClass::kHighEndVm: return "high-end-vm";
    case ResourceClass::kQpu: return "qpu";
  }
  return "?";
}

double PriceTable::per_task(ResourceClass r) const {
  switch (r) {
    case ResourceClass::kStandardVm: return standard_vm_per_task;
    case ResourceClass::kHighEndVm: return highend_vm_per_task;
    case ResourceClass::kQpu: return qpu_per_task;
  }
  throw std::logic_error("PriceTable::per_task: bad class");
}

double PriceTable::per_hour(ResourceClass r) const {
  switch (r) {
    case ResourceClass::kStandardVm: return standard_vm_per_hour;
    case ResourceClass::kHighEndVm: return highend_vm_per_hour;
    case ResourceClass::kQpu: return qpu_per_hour;
  }
  throw std::logic_error("PriceTable::per_hour: bad class");
}

ResourceClass vm_class_for(mitigation::Accelerator accelerator) {
  return accelerator == mitigation::Accelerator::kCpu ? ResourceClass::kStandardVm
                                                      : ResourceClass::kHighEndVm;
}

double job_cost_dollars(double quantum_seconds, double classical_seconds,
                        mitigation::Accelerator accelerator, const PriceTable& prices) {
  if (quantum_seconds < 0.0 || classical_seconds < 0.0) {
    throw std::invalid_argument("job_cost_dollars: negative time");
  }
  const double qpu = prices.per_hour(ResourceClass::kQpu) * quantum_seconds / 3600.0;
  const double vm =
      prices.per_hour(vm_class_for(accelerator)) * classical_seconds / 3600.0;
  return qpu + vm;
}

}  // namespace qon::estimator
