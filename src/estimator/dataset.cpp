#include "estimator/dataset.hpp"

#include <algorithm>

#include "circuit/library.hpp"
#include "estimator/execution_model.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::estimator {

std::vector<RunRecord> generate_run_archive(const qpu::Fleet& fleet,
                                            const ArchiveConfig& config) {
  if (fleet.backends.empty()) {
    throw std::invalid_argument("generate_run_archive: empty fleet");
  }
  Rng rng(config.seed);
  const sim::HiddenNoise hidden(config.seed ^ 0xdeadbeefULL, config.hidden_sigma);
  const auto families = circuit::all_benchmark_families();
  const auto menu = mitigation::standard_mitigation_menu();

  std::vector<RunRecord> archive;
  archive.reserve(config.num_runs);
  while (archive.size() < config.num_runs) {
    const auto family = families[rng.weighted_index(std::vector<double>(families.size(), 1.0))];
    const int width = static_cast<int>(rng.uniform_int(config.min_qubits, config.max_qubits));
    const int shots = static_cast<int>(rng.uniform_int(config.min_shots, config.max_shots));
    const auto& backend =
        *fleet.backends[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(fleet.backends.size()) - 1))];
    const auto& spec =
        menu[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(menu.size()) - 1))];

    circuit::Circuit circ = circuit::make_benchmark(family, width, rng());
    if (circ.num_qubits() > backend.num_qubits()) continue;  // bv adds an ancilla

    const auto transpiled = transpiler::transpile(circ, backend);
    const auto sig = mitigation::compute_signature(
        spec, static_cast<std::size_t>(circ.num_qubits()),
        static_cast<std::size_t>(transpiled.circuit.depth()),
        transpiled.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(transpiled.circuit.num_clbits()),
        backend.calibration().mean_gate_error_2q(), mitigation::Accelerator::kCpu);

    RunRecord record;
    record.features = extract_features(transpiled, shots, spec, backend);
    // Ground truth: true-rate ESP (hidden perturbation + crosstalk +
    // DD-aware delays), mitigated by the stack's residual, plus shot noise.
    record.fidelity = executed_fidelity(transpiled.circuit, backend, sig, hidden,
                                        config.crosstalk_factor, shots, rng);

    // The archive records per-circuit-execution runtime, as real cloud runs
    // do; mitigation's circuit-count/runtime multipliers are applied by the
    // consumer via the MitigationSignature (plans, scheduler inputs).
    record.quantum_seconds = transpiler::job_quantum_runtime(transpiled.schedule, shots, backend);
    record.classical_seconds =
        sig.classical_preprocess_seconds + sig.classical_postprocess_seconds;

    archive.push_back(std::move(record));
  }
  return archive;
}

}  // namespace qon::estimator
