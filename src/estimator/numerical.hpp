#pragma once
// Numerical baseline estimator (Fig. 7b/c): the state-of-the-art approach
// of computing fidelity and runtime directly from calibration data — walk
// the circuit multiplying gate success probabilities / summing durations.
// It ignores error-mitigation effects and any estimator-invisible noise,
// which is exactly why the regression estimator beats it.

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::estimator {

/// Calibration-product fidelity estimate of a transpiled circuit (no
/// mitigation awareness, no hidden-noise awareness).
double numerical_fidelity_estimate(const circuit::Circuit& physical,
                                   const qpu::Backend& backend);

/// Duration-sum runtime estimate: shots x (scheduled duration + the
/// device's published rep delay when a backend is given, else the IBM-like
/// 250 us default). No mitigation-multiplier awareness.
double numerical_runtime_estimate(const transpiler::TranspileResult& transpiled, int shots);
double numerical_runtime_estimate(const transpiler::TranspileResult& transpiled, int shots,
                                  const qpu::Backend& backend);

}  // namespace qon::estimator
