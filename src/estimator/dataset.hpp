#pragma once
// Synthetic run archive: the stand-in for the paper's dataset of 7,000+
// real executions on the IBM cloud. Benchmark circuits are transpiled to
// random fleet backends under random mitigation stacks and "executed" by
// the ground-truth model (true = published calibration x hidden
// perturbation x crosstalk, plus shot noise), yielding
// (features -> fidelity, quantum runtime) training pairs.

#include <cstdint>
#include <vector>

#include "estimator/features.hpp"
#include "qpu/fleet.hpp"
#include "simulator/noise.hpp"

namespace qon::estimator {

/// One archived execution.
struct RunRecord {
  JobFeatures features;
  double fidelity = 0.0;          ///< measured (ground-truth) fidelity
  double quantum_seconds = 0.0;   ///< measured quantum execution time
  double classical_seconds = 0.0; ///< classical pre+post processing time
};

struct ArchiveConfig {
  std::size_t num_runs = 2000;
  int min_qubits = 2;
  int max_qubits = 24;
  int min_shots = 1000;
  int max_shots = 8000;
  std::uint64_t seed = 7;
  /// Hidden-noise strength the ground truth uses (estimators never see it).
  double hidden_sigma = 0.25;
  double crosstalk_factor = 1.08;
};

/// Generates the archive by executing benchmarks across `fleet`.
std::vector<RunRecord> generate_run_archive(const qpu::Fleet& fleet, const ArchiveConfig& config);

}  // namespace qon::estimator
