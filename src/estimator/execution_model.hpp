#pragma once
// Shared analytic execution model: how a (transpiled circuit, mitigation
// signature, backend) triple maps to fidelity. Used in three places with
// different noise knowledge:
//  * predicted_fidelity(...)   — estimator-visible (published calibration);
//  * executed_fidelity(...)    — ground truth (hidden perturbation,
//                                crosstalk, shot noise).
// Keeping both in one translation unit guarantees the estimator and the
// simulator agree on everything except the hidden terms.

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "mitigation/pipeline.hpp"
#include "qpu/backend.hpp"
#include "simulator/noise.hpp"

namespace qon::estimator {

/// Mitigated fidelity as the estimator would compute it from published
/// calibration only (no hidden noise, no crosstalk model).
double predicted_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                          const mitigation::MitigationSignature& signature);

/// Ground-truth mitigated fidelity: true rates (hidden perturbation +
/// crosstalk) plus shot noise from `shots` samples.
double executed_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                         const mitigation::MitigationSignature& signature,
                         const sim::HiddenNoise& hidden, double crosstalk_factor, int shots,
                         Rng& rng);

}  // namespace qon::estimator
