#pragma once
// The regression-based fidelity and runtime estimators (§6). Both train on
// the run archive with K-fold model selection over {linear, polynomial,
// knn}; the paper reports Polynomial Regression winning with R² 0.998
// (runtime) and 0.976 (fidelity).

#include <memory>
#include <string>
#include <vector>

#include "estimator/dataset.hpp"
#include "mlcore/model_selection.hpp"
#include "mlcore/regression.hpp"

namespace qon::estimator {

/// Outcome of training one estimator.
struct TrainingReport {
  std::string selected_model;
  double cv_r2 = 0.0;                    ///< mean K-fold R² of the winner
  std::vector<ml::CvResult> all_models;  ///< every candidate, best first
};

/// Regression estimator for quantum execution time [s]. Internally trains
/// on log(seconds) — the target is multiplicative and spans orders of
/// magnitude — so the reported CV R² is measured in log space.
class RuntimeEstimator {
 public:
  /// Trains on the archive; `folds`-fold CV selects the model family.
  TrainingReport train(const std::vector<RunRecord>& archive, std::size_t folds = 5,
                       std::uint64_t seed = 42);

  /// Predicted quantum runtime for a job's features. Requires train().
  double estimate(const JobFeatures& features) const;

  bool trained() const { return model_ != nullptr; }

 private:
  std::unique_ptr<ml::Regressor> model_;
};

/// Regression estimator for execution fidelity in [0, 1].
class FidelityEstimator {
 public:
  TrainingReport train(const std::vector<RunRecord>& archive, std::size_t folds = 5,
                       std::uint64_t seed = 42);

  /// Predicted fidelity, clamped to [0, 1]. Requires train().
  double estimate(const JobFeatures& features) const;

  bool trained() const { return model_ != nullptr; }

 private:
  std::unique_ptr<ml::Regressor> model_;
};

}  // namespace qon::estimator
