#pragma once
// Resource plan generation (§6, Fig. 4): enumerate mitigation stacks x
// accelerators x template QPUs, estimate fidelity / runtime / cost for
// each, Pareto-filter on (fidelity, total runtime) and recommend a
// configurable number of plans (default three: fast, balanced, faithful).

#include <string>
#include <vector>

#include "estimator/models.hpp"
#include "estimator/pricing.hpp"
#include "mitigation/pipeline.hpp"
#include "qpu/backend.hpp"

namespace qon::estimator {

/// One costed execution option for a workflow's quantum job.
struct ResourcePlan {
  mitigation::MitigationSpec spec;
  mitigation::Accelerator accelerator = mitigation::Accelerator::kCpu;
  std::string template_backend;
  double est_fidelity = 0.0;
  double est_quantum_seconds = 0.0;
  double est_classical_seconds = 0.0;
  double est_total_seconds = 0.0;
  double est_cost_dollars = 0.0;
  /// The DD dephasing residual to execute with (noise-model consistency).
  double delay_dephasing_residual = 1.0;
};

struct PlanConfig {
  int shots = 4000;
  std::size_t max_recommended = 3;  ///< paper default: three plans
  std::vector<mitigation::Accelerator> accelerators = {mitigation::Accelerator::kCpu,
                                                       mitigation::Accelerator::kGpu};
  PriceTable prices;
};

struct PlanSet {
  std::vector<ResourcePlan> all;          ///< every enumerated option
  std::vector<ResourcePlan> pareto;       ///< non-dominated (fidelity vs time)
  std::vector<ResourcePlan> recommended;  ///< up to max_recommended spread
};

/// Generates plans for `circ` against the given template backends. When the
/// regression estimators are provided (trained), they produce the fidelity/
/// runtime estimates; otherwise the calibration-model fallback is used.
PlanSet generate_resource_plans(const circuit::Circuit& circ,
                                const std::vector<qpu::Backend>& templates,
                                const PlanConfig& config,
                                const FidelityEstimator* fidelity_model = nullptr,
                                const RuntimeEstimator* runtime_model = nullptr);

}  // namespace qon::estimator
