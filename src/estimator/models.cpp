#include "estimator/models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::estimator {

namespace {

// Candidate model factories shared by both estimators.
std::vector<ml::RegressorFactory> candidate_factories() {
  return {
      [] { return std::make_unique<ml::LinearRegression>(); },
      [] { return std::make_unique<ml::PolynomialRegression>(2, 1e-8); },
      [] { return std::make_unique<ml::KnnRegression>(7); },
  };
}

// Builds (X, y) from the archive via a row extractor.
template <typename FeatureFn, typename LabelFn>
void build_xy(const std::vector<RunRecord>& archive, FeatureFn features, LabelFn label,
              ml::Matrix& x, std::vector<double>& y) {
  if (archive.empty()) throw std::invalid_argument("estimator: empty archive");
  const auto first = features(archive.front());
  x = ml::Matrix(archive.size(), first.size());
  y.resize(archive.size());
  for (std::size_t i = 0; i < archive.size(); ++i) {
    const auto row = features(archive[i]);
    for (std::size_t j = 0; j < row.size(); ++j) x(i, j) = row[j];
    y[i] = label(archive[i]);
  }
}

// Re-instantiates the winning model family by name.
std::unique_ptr<ml::Regressor> instantiate(const std::string& name) {
  for (const auto& factory : candidate_factories()) {
    auto model = factory();
    if (model->name() == name) return model;
  }
  throw std::logic_error("estimator: unknown model name: " + name);
}

TrainingReport train_generic(const std::vector<RunRecord>& archive, std::size_t folds,
                             std::uint64_t seed, bool fidelity,
                             std::unique_ptr<ml::Regressor>& model_out) {
  ml::Matrix x;
  std::vector<double> y;
  if (fidelity) {
    build_xy(
        archive, [](const RunRecord& r) { return fidelity_feature_vector(r.features); },
        [](const RunRecord& r) { return r.fidelity; }, x, y);
  } else {
    // The runtime target is trained in log space: the label spans several
    // orders of magnitude (mitigation multipliers up to ~1e4) and is
    // multiplicative in its factors, so log-linearization is what makes the
    // paper-level R² achievable. Reported R² is in log space.
    build_xy(
        archive, [](const RunRecord& r) { return runtime_feature_vector(r.features); },
        [](const RunRecord& r) { return std::log(std::max(r.quantum_seconds, 1e-9)); }, x, y);
  }
  TrainingReport report;
  report.all_models = ml::select_best_model(candidate_factories(), x, y, folds, seed);
  report.selected_model = report.all_models.front().model_name;
  report.cv_r2 = report.all_models.front().mean_r2;
  model_out = instantiate(report.selected_model);
  model_out->fit(x, y);
  return report;
}

}  // namespace

TrainingReport RuntimeEstimator::train(const std::vector<RunRecord>& archive, std::size_t folds,
                                       std::uint64_t seed) {
  return train_generic(archive, folds, seed, /*fidelity=*/false, model_);
}

double RuntimeEstimator::estimate(const JobFeatures& features) const {
  if (!model_) throw std::logic_error("RuntimeEstimator: estimate before train");
  // The model predicts log(seconds); clamp the exponent to keep the
  // round-trip finite even for extrapolated inputs.
  const double log_pred =
      std::min(model_->predict_one(runtime_feature_vector(features)), 40.0);
  return std::exp(log_pred);
}

TrainingReport FidelityEstimator::train(const std::vector<RunRecord>& archive, std::size_t folds,
                                        std::uint64_t seed) {
  return train_generic(archive, folds, seed, /*fidelity=*/true, model_);
}

double FidelityEstimator::estimate(const JobFeatures& features) const {
  if (!model_) throw std::logic_error("FidelityEstimator: estimate before train");
  return std::clamp(model_->predict_one(fidelity_feature_vector(features)), 0.0, 1.0);
}

}  // namespace qon::estimator
