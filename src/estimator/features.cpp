#include "estimator/features.hpp"

#include <algorithm>
#include <cmath>

namespace qon::estimator {

using mitigation::Technique;

JobFeatures extract_features(const transpiler::TranspileResult& transpiled, int shots,
                             const mitigation::MitigationSpec& spec,
                             const qpu::Backend& backend) {
  JobFeatures f;
  const auto& circ = transpiled.circuit;
  f.width = static_cast<double>(transpiled.initial_layout.size());
  f.depth = static_cast<double>(circ.depth());
  f.two_qubit_gates = static_cast<double>(circ.two_qubit_gate_count());
  f.total_gates = static_cast<double>(circ.operation_count());
  f.shots = static_cast<double>(shots);
  f.duration_single_shot = transpiled.schedule.duration;
  f.rep_delay = backend.calibration().rep_delay;

  f.zne = spec.uses(Technique::kZne) ? 1.0 : 0.0;
  f.pec = spec.uses(Technique::kPec) ? 1.0 : 0.0;
  f.rem = spec.uses(Technique::kRem) ? 1.0 : 0.0;
  f.dd = spec.uses(Technique::kDd) ? 1.0 : 0.0;
  f.twirling = spec.uses(Technique::kTwirling) ? 1.0 : 0.0;
  f.cutting = spec.uses(Technique::kCutting) ? 1.0 : 0.0;

  const auto& cal = backend.calibration();
  f.mean_gate_error_2q = cal.mean_gate_error_2q();
  f.mean_gate_error_1q = cal.mean_gate_error_1q();
  f.mean_readout_error = cal.mean_readout_error();
  f.mean_t1 = cal.mean_t1();
  f.mean_t2 = cal.mean_t2();
  return f;
}

std::vector<double> runtime_feature_vector(const JobFeatures& f) {
  // Quantum runtime is multiplicative: shots x (duration + rep delay) x
  // per-technique multipliers. The log-transformed base features make that
  // structure (nearly) linear for the log-target runtime model.
  const double log_shots = std::log(std::max(f.shots, 1.0));
  const double log_duration =
      std::log(std::max(f.duration_single_shot, 1e-9) + std::max(f.rep_delay, 1e-9));
  return {f.width,     f.depth, f.two_qubit_gates, f.total_gates,
          f.shots,     f.duration_single_shot, f.rep_delay,
          log_shots,   log_duration,
          f.zne,       f.pec,   f.rem,             f.dd,
          f.twirling,  f.cutting};
}

std::vector<double> fidelity_feature_vector(const JobFeatures& f) {
  // Physics-informed feature: the log-ESP a calibration-product model would
  // compute. The regression learns mitigation uplift, crosstalk bias and
  // residual structure on top of it (cf. Fig. 7b: regression vs numerical).
  const double one_q_gates = std::max(f.total_gates - f.two_qubit_gates, 0.0);
  double log_esp = -(f.two_qubit_gates * f.mean_gate_error_2q +
                     one_q_gates * f.mean_gate_error_1q +
                     f.width * f.mean_readout_error);
  if (f.mean_t1 > 0.0 && f.mean_t2 > 0.0) {
    log_esp -= f.duration_single_shot * (1.0 / f.mean_t1 + 0.5 / f.mean_t2);
  }
  log_esp = std::max(log_esp, -60.0);
  return {f.width,
          f.depth,
          f.two_qubit_gates,
          f.total_gates,
          f.duration_single_shot,
          f.zne,
          f.pec,
          f.rem,
          f.dd,
          f.twirling,
          f.cutting,
          f.mean_gate_error_2q,
          f.mean_gate_error_1q,
          f.mean_readout_error,
          f.mean_t1,
          f.mean_t2,
          log_esp,
          std::exp(log_esp)};
}

std::size_t runtime_feature_count() { return 15; }

std::size_t fidelity_feature_count() { return 18; }

}  // namespace qon::estimator
