#include "estimator/numerical.hpp"

#include "simulator/esp.hpp"

namespace qon::estimator {

double numerical_fidelity_estimate(const circuit::Circuit& physical,
                                   const qpu::Backend& backend) {
  // Published-calibration ESP: no hidden perturbation, no crosstalk model.
  return sim::esp_fidelity(physical, backend, sim::HiddenNoise::none());
}

double numerical_runtime_estimate(const transpiler::TranspileResult& transpiled, int shots) {
  return transpiler::job_quantum_runtime(transpiled.schedule, shots);
}

double numerical_runtime_estimate(const transpiler::TranspileResult& transpiled, int shots,
                                  const qpu::Backend& backend) {
  return transpiler::job_quantum_runtime(transpiled.schedule, shots, backend);
}

}  // namespace qon::estimator
