#include "campaign/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"

namespace qon::campaign {

namespace {

constexpr double kGridLow = 1e-3;       // seconds
constexpr double kGridHigh = 1e6;       // seconds
constexpr int kBucketsPerDecade = 32;
constexpr int kDecades = 9;             // 1e-3 .. 1e6
constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>(kBucketsPerDecade * kDecades) + 2;  // under/overflow

/// Lower bound of bucket `i` (i in [1, kNumBuckets-1]); bucket 0 is the
/// underflow bucket [0, kGridLow).
double bucket_low(std::size_t i) {
  return kGridLow * std::pow(10.0, static_cast<double>(i - 1) / kBucketsPerDecade);
}

std::string format_double(double value, int precision = 6) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace

LatencyAccumulator::LatencyAccumulator() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyAccumulator::bucket_index(double seconds) const {
  if (!(seconds >= kGridLow)) return 0;  // underflow (and NaN) land low
  if (seconds >= kGridHigh) return kNumBuckets - 1;
  const std::size_t i = 1 + static_cast<std::size_t>(std::floor(
                                std::log10(seconds / kGridLow) * kBucketsPerDecade));
  return std::min(i, kNumBuckets - 2);
}

void LatencyAccumulator::observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  if (count_ == 0) {
    min_ = seconds;
    max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
  ++buckets_[bucket_index(seconds)];
}

double LatencyAccumulator::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // The quantile lands in bucket i: interpolate geometrically between the
    // bucket bounds, clamped to the exactly-tracked global min/max.
    double low = i == 0 ? min_ : bucket_low(i);
    double high = i + 1 >= buckets_.size() ? max_ : bucket_low(i + 1);
    low = std::max(low, min_);
    high = std::min(high, max_);
    if (!(high > low)) return low;
    const double within =
        (target - static_cast<double>(before)) / static_cast<double>(buckets_[i]);
    return low * std::pow(high / low, std::clamp(within, 0.0, 1.0));
  }
  return max_;
}

double LatencyAccumulator::fraction_below(double seconds) const {
  if (count_ == 0) return 1.0;
  if (seconds >= max_) return 1.0;
  if (seconds < min_) return 0.0;
  const std::size_t target = bucket_index(seconds);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < target; ++i) below += buckets_[i];
  // Partial credit inside the landing bucket, geometric interpolation.
  double low = target == 0 ? min_ : bucket_low(target);
  double high = target + 1 >= buckets_.size() ? max_ : bucket_low(target + 1);
  low = std::max(low, min_);
  high = std::min(high, max_);
  double within = 1.0;
  if (high > low && seconds < high) {
    within = std::log(std::max(seconds, low) / low) / std::log(high / low);
  }
  const double partial = static_cast<double>(buckets_[target]) * std::clamp(within, 0.0, 1.0);
  return (static_cast<double>(below) + partial) / static_cast<double>(count_);
}

void write_report_json(const CampaignReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_report_json: cannot open '" + path + "'");
  }
  out << "{\n";
  out << "  \"profile\": \"" << report.profile_name << "\",\n";
  out << "  \"seed\": " << report.seed << ",\n";
  out << "  \"pacing\": \"" << report.pacing << "\",\n";
  out << "  \"arrival_process\": \"" << report.arrival_process << "\",\n";
  out << "  \"arrivals\": " << report.arrivals << ",\n";
  out << "  \"admitted\": " << report.admitted << ",\n";
  out << "  \"shed\": " << report.shed << ",\n";
  out << "  \"rejected\": " << report.rejected << ",\n";
  out << "  \"completed\": " << report.completed << ",\n";
  out << "  \"failed\": " << report.failed << ",\n";
  out << "  \"cancelled\": " << report.cancelled << ",\n";
  out << "  \"jobs_expired\": " << report.jobs_expired << ",\n";
  out << "  \"jobs_filtered\": " << report.jobs_filtered << ",\n";
  out << "  \"sched_cycles\": " << report.sched_cycles << ",\n";
  out << "  \"churn_applied\": " << report.churn_applied << ",\n";
  out << "  \"stats_rows\": " << report.stats_rows << ",\n";
  out << "  \"stats_path\": \"" << report.stats_path << "\",\n";
  out << "  \"alerts_fired\": " << report.alerts_fired << ",\n";
  out << "  \"alerts_resolved\": " << report.alerts_resolved << ",\n";
  out << "  \"alert_transitions\": " << report.alert_transitions << ",\n";
  // "alerts_stats_path" contains "stats_path", so the CI report diff
  // (grep -v 'wall\|stats_path') excludes it like the stats path above.
  out << "  \"alerts_stats_path\": \"" << report.alerts_stats_path << "\",\n";
  out << "  \"virtual_duration_seconds\": "
      << format_double(report.virtual_duration_seconds) << ",\n";
  // Keep every wall-derived number on a line containing "wall": CI diffs
  // two same-seed reports with `grep -v wall`.
  out << "  \"wall_seconds\": " << format_double(report.wall_seconds) << ",\n";
  out << "  \"classes\": [";
  for (std::size_t i = 0; i < report.classes.size(); ++i) {
    const ClassReport& cls = report.classes[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"priority\": \"" << api::priority_name(cls.priority) << "\",\n";
    out << "      \"completed\": " << cls.completed << ",\n";
    out << "      \"mean_latency_seconds\": "
        << format_double(cls.mean_latency_seconds) << ",\n";
    out << "      \"p50_seconds\": " << format_double(cls.p50_seconds) << ",\n";
    out << "      \"p90_seconds\": " << format_double(cls.p90_seconds) << ",\n";
    out << "      \"p99_seconds\": " << format_double(cls.p99_seconds) << ",\n";
    out << "      \"slo_seconds\": " << format_double(cls.slo_seconds) << ",\n";
    out << "      \"slo_attainment\": " << format_double(cls.slo_attainment) << "\n";
    out << "    }";
  }
  out << (report.classes.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  if (!out) throw std::runtime_error("write_report_json: write to '" + path + "' failed");
}

void print_slo_table(std::ostream& os, const CampaignReport& report) {
  TextTable table({"class", "completed", "mean_s", "p50_s", "p90_s", "p99_s",
                   "slo_s", "attained"});
  for (const ClassReport& cls : report.classes) {
    table.add_row({api::priority_name(cls.priority), std::to_string(cls.completed),
                   TextTable::num(cls.mean_latency_seconds, 2),
                   TextTable::num(cls.p50_seconds, 2), TextTable::num(cls.p90_seconds, 2),
                   TextTable::num(cls.p99_seconds, 2),
                   cls.slo_seconds > 0.0 ? TextTable::num(cls.slo_seconds, 0) : "-",
                   cls.slo_seconds > 0.0
                       ? TextTable::num(100.0 * cls.slo_attainment, 1) + "%"
                       : "-"});
  }
  table.print(os, "campaign " + report.profile_name + " — per-class latency / SLO");
}

}  // namespace qon::campaign
