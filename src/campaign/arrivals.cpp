#include "campaign/arrivals.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::campaign {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kPareto: return "pareto";
    case ArrivalKind::kFlashCrowd: return "flash_crowd";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec) : spec_(spec) {
  if (!(spec_.rate_per_hour > 0.0)) {
    throw std::invalid_argument("ArrivalProcess: rate_per_hour must be > 0");
  }
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kDiurnal:
      if (!(spec_.diurnal_low_ratio > 0.0) ||
          !(spec_.diurnal_high_ratio >= spec_.diurnal_low_ratio)) {
        throw std::invalid_argument(
            "ArrivalProcess: diurnal ratios must satisfy 0 < low <= high");
      }
      if (!(spec_.period_hours > 0.0)) {
        throw std::invalid_argument("ArrivalProcess: period_hours must be > 0");
      }
      thinned_ = true;
      break;
    case ArrivalKind::kPareto: {
      if (!(spec_.pareto_alpha > 1.0)) {
        // alpha <= 1 has an infinite mean gap: no finite scale can hit the
        // requested mean rate.
        throw std::invalid_argument("ArrivalProcess: pareto_alpha must be > 1");
      }
      const double mean_gap_seconds = 3600.0 / spec_.rate_per_hour;
      pareto_scale_ =
          mean_gap_seconds * (spec_.pareto_alpha - 1.0) / spec_.pareto_alpha;
      break;
    }
    case ArrivalKind::kFlashCrowd:
      if (!(spec_.spike_multiplier >= 1.0)) {
        throw std::invalid_argument(
            "ArrivalProcess: spike_multiplier must be >= 1");
      }
      if (spec_.spike_start_hours < 0.0 || spec_.spike_duration_hours < 0.0) {
        throw std::invalid_argument(
            "ArrivalProcess: spike window must be non-negative");
      }
      thinned_ = true;
      break;
  }
}

double ArrivalProcess::rate_at(double t_seconds) const {
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kPareto:
      // kPareto's rate is a MEAN over the renewal process, not an
      // instantaneous intensity, but it is the right normalizer for tests
      // and reporting.
      return spec_.rate_per_hour;
    case ArrivalKind::kDiurnal: {
      const double mid = 0.5 * (spec_.diurnal_low_ratio + spec_.diurnal_high_ratio);
      const double amp = 0.5 * (spec_.diurnal_high_ratio - spec_.diurnal_low_ratio);
      const double phase = 2.0 * M_PI * t_seconds / (spec_.period_hours * 3600.0);
      return spec_.rate_per_hour * (mid + amp * std::sin(phase));
    }
    case ArrivalKind::kFlashCrowd: {
      const double start = spec_.spike_start_hours * 3600.0;
      const double end = start + spec_.spike_duration_hours * 3600.0;
      const bool in_spike = t_seconds >= start && t_seconds < end;
      return spec_.rate_per_hour * (in_spike ? spec_.spike_multiplier : 1.0);
    }
  }
  return spec_.rate_per_hour;
}

double ArrivalProcess::max_rate_per_hour() const {
  switch (spec_.kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kPareto:
      return spec_.rate_per_hour;
    case ArrivalKind::kDiurnal:
      return spec_.rate_per_hour * spec_.diurnal_high_ratio;
    case ArrivalKind::kFlashCrowd:
      return spec_.rate_per_hour * spec_.spike_multiplier;
  }
  return spec_.rate_per_hour;
}

double ArrivalProcess::next(double t, double horizon, Rng& rng) const {
  const double gap_rate_per_second = max_rate_per_hour() / 3600.0;
  for (;;) {
    if (spec_.kind == ArrivalKind::kPareto) {
      // Inverse-CDF Pareto gap: x_m * (1 - u)^(-1/alpha), u in [0, 1).
      t += pareto_scale_ *
           std::pow(1.0 - rng.uniform(), -1.0 / spec_.pareto_alpha);
    } else {
      t += rng.exponential(gap_rate_per_second);
    }
    if (t >= horizon) return t;
    if (!thinned_) return t;
    // Thinning: accept proportionally to the instantaneous rate.
    const double accept = rate_at(t) / max_rate_per_hour();
    if (rng.bernoulli(accept)) return t;
  }
}

}  // namespace qon::campaign
