#include "campaign/profile.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "yamlite/yamlite.hpp"

namespace qon::campaign {

namespace {

/// Parse-time failures below yamlite level; wrapped into INVALID_ARGUMENT
/// by parse_profile's catch-all.
[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

/// Typo guard: every section rejects keys it does not know, so a profile
/// that misspells `queue_threshold` fails loudly instead of silently
/// running with the default.
void check_keys(const yaml::Node& node, const std::vector<std::string>& allowed,
                const std::string& section) {
  if (!node.is_mapping()) fail(section + ": expected a mapping");
  for (const auto& [key, value] : node.entries()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      fail(section + ": unknown key '" + key + "'");
    }
  }
}

double get_double(const yaml::Node& node, const std::string& key, double fallback) {
  return node.is_mapping() ? node.get(key).as_double_or(fallback) : fallback;
}

long long get_int(const yaml::Node& node, const std::string& key, long long fallback) {
  return node.is_mapping() ? node.get(key).as_int_or(fallback) : fallback;
}

std::string get_string(const yaml::Node& node, const std::string& key,
                       const std::string& fallback) {
  return node.is_mapping() ? node.get(key).as_string_or(fallback) : fallback;
}

std::size_t get_size(const yaml::Node& node, const std::string& key,
                     std::size_t fallback, const std::string& section) {
  const long long value = get_int(node, key, static_cast<long long>(fallback));
  if (value < 0) fail(section + ": " + key + " must be >= 0");
  return static_cast<std::size_t>(value);
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal, ArrivalKind::kPareto,
        ArrivalKind::kFlashCrowd}) {
    if (name == arrival_kind_name(kind)) return kind;
  }
  fail("arrivals: unknown process '" + name +
       "' (expected poisson | diurnal | pareto | flash_crowd)");
}

api::Priority parse_priority(const std::string& name,
                             const std::string& section = "tenant") {
  for (const api::Priority p : {api::Priority::kBatch, api::Priority::kStandard,
                                api::Priority::kInteractive}) {
    if (name == api::priority_name(p)) return p;
  }
  fail(section + ": unknown priority '" + name +
       "' (expected batch | standard | interactive)");
}

circuit::BenchmarkFamily parse_family(const std::string& name) {
  for (const auto family : circuit::all_benchmark_families()) {
    if (name == circuit::benchmark_family_name(family)) return family;
  }
  fail("tenant: unknown circuit family '" + name + "'");
}

ChurnAction parse_churn_action(const std::string& name) {
  for (const ChurnAction action :
       {ChurnAction::kQpuOffline, ChurnAction::kQpuOnline, ChurnAction::kRecalibrate}) {
    if (name == churn_action_name(action)) return action;
  }
  fail("churn: unknown action '" + name +
       "' (expected qpu_offline | qpu_online | recalibrate)");
}

void parse_campaign_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node,
             {"name", "seed", "duration_hours", "target_runs",
              "stats_interval_seconds", "pacing"},
             "campaign");
  profile.name = get_string(node, "name", profile.name);
  const long long seed = get_int(node, "seed", static_cast<long long>(profile.seed));
  if (seed < 0) fail("campaign: seed must be >= 0");
  profile.seed = static_cast<std::uint64_t>(seed);
  profile.duration_hours = get_double(node, "duration_hours", profile.duration_hours);
  const long long target = get_int(node, "target_runs", 0);
  if (target < 0) fail("campaign: target_runs must be >= 0");
  profile.target_runs = static_cast<std::uint64_t>(target);
  profile.stats_interval_seconds =
      get_double(node, "stats_interval_seconds", profile.stats_interval_seconds);
  const std::string pacing = get_string(node, "pacing", "lockstep");
  if (pacing == pacing_mode_name(PacingMode::kLockstep)) {
    profile.pacing = PacingMode::kLockstep;
  } else if (pacing == pacing_mode_name(PacingMode::kWindowed)) {
    profile.pacing = PacingMode::kWindowed;
  } else {
    fail("campaign: unknown pacing '" + pacing + "' (expected lockstep | windowed)");
  }
}

void parse_arrivals_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node,
             {"process", "rate_per_hour", "diurnal_low_ratio", "diurnal_high_ratio",
              "period_hours", "pareto_alpha", "spike_start_hours",
              "spike_duration_hours", "spike_multiplier"},
             "arrivals");
  ArrivalSpec& spec = profile.arrivals;
  spec.kind = parse_arrival_kind(get_string(node, "process", "poisson"));
  spec.rate_per_hour = get_double(node, "rate_per_hour", spec.rate_per_hour);
  spec.diurnal_low_ratio = get_double(node, "diurnal_low_ratio", spec.diurnal_low_ratio);
  spec.diurnal_high_ratio =
      get_double(node, "diurnal_high_ratio", spec.diurnal_high_ratio);
  spec.period_hours = get_double(node, "period_hours", spec.period_hours);
  spec.pareto_alpha = get_double(node, "pareto_alpha", spec.pareto_alpha);
  spec.spike_start_hours = get_double(node, "spike_start_hours", spec.spike_start_hours);
  spec.spike_duration_hours =
      get_double(node, "spike_duration_hours", spec.spike_duration_hours);
  spec.spike_multiplier = get_double(node, "spike_multiplier", spec.spike_multiplier);
}

void parse_fleet_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node,
             {"num_qpus", "executor_threads", "trajectory_width_limit",
              "max_terminal_runs"},
             "fleet");
  profile.num_qpus = get_size(node, "num_qpus", profile.num_qpus, "fleet");
  profile.executor_threads =
      get_size(node, "executor_threads", profile.executor_threads, "fleet");
  const long long width_limit =
      get_int(node, "trajectory_width_limit", profile.trajectory_width_limit);
  if (width_limit < 0) fail("fleet: trajectory_width_limit must be >= 0");
  profile.trajectory_width_limit = static_cast<int>(width_limit);
  profile.max_terminal_runs =
      get_size(node, "max_terminal_runs", profile.max_terminal_runs, "fleet");
}

void parse_scheduler_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node,
             {"queue_threshold", "interval_seconds", "queue_capacity",
              "max_batch_size", "aging_seconds", "stats_cycle_history",
              "stats_wait_history"},
             "scheduler");
  auto& sched = profile.scheduler;
  sched.queue_threshold =
      get_size(node, "queue_threshold", sched.queue_threshold, "scheduler");
  sched.interval_seconds = get_double(node, "interval_seconds", sched.interval_seconds);
  sched.queue_capacity =
      get_size(node, "queue_capacity", sched.queue_capacity, "scheduler");
  sched.max_batch_size =
      get_size(node, "max_batch_size", sched.max_batch_size, "scheduler");
  sched.aging_seconds = get_double(node, "aging_seconds", sched.aging_seconds);
  sched.stats_cycle_history =
      get_size(node, "stats_cycle_history", sched.stats_cycle_history, "scheduler");
  sched.stats_wait_history =
      get_size(node, "stats_wait_history", sched.stats_wait_history, "scheduler");
}

void parse_admission_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node,
             {"max_live_runs", "shed_batch_at", "shed_standard_at",
              "retry_after_seconds"},
             "admission");
  auto& admission = profile.admission;
  admission.max_live_runs =
      get_size(node, "max_live_runs", admission.max_live_runs, "admission");
  admission.shed_batch_at = get_double(node, "shed_batch_at", admission.shed_batch_at);
  admission.shed_standard_at =
      get_double(node, "shed_standard_at", admission.shed_standard_at);
  admission.retry_after_seconds =
      get_double(node, "retry_after_seconds", admission.retry_after_seconds);
}

void parse_tenants_section(const yaml::Node& node, CampaignProfile& profile) {
  if (!node.is_sequence()) fail("tenants: expected a sequence");
  for (const auto& entry : node.items()) {
    check_keys(entry,
               {"name", "weight", "priority", "circuit", "width", "shots",
                "fidelity_weight", "deadline_offset_seconds",
                "deadline_offset_max_seconds"},
               "tenant");
    TenantSpec tenant;
    tenant.name = get_string(entry, "name", "");
    if (tenant.name.empty()) fail("tenant: name must be non-empty");
    tenant.weight = get_double(entry, "weight", tenant.weight);
    if (!(tenant.weight > 0.0)) fail("tenant '" + tenant.name + "': weight must be > 0");
    tenant.priority = parse_priority(get_string(entry, "priority", "standard"));
    tenant.family = parse_family(get_string(entry, "circuit", "ghz"));
    const long long width = get_int(entry, "width", tenant.width);
    if (width < 2 || width > 27) {
      fail("tenant '" + tenant.name + "': width must be in [2, 27]");
    }
    tenant.width = static_cast<int>(width);
    const long long shots = get_int(entry, "shots", tenant.shots);
    if (shots <= 0) fail("tenant '" + tenant.name + "': shots must be > 0");
    tenant.shots = static_cast<int>(shots);
    if (entry.is_mapping() && entry.has("fidelity_weight")) {
      const double weight = entry.at("fidelity_weight").as_double();
      if (weight < 0.0 || weight > 1.0) {
        fail("tenant '" + tenant.name + "': fidelity_weight must be in [0, 1]");
      }
      tenant.fidelity_weight = weight;
    }
    tenant.deadline_offset_min_seconds =
        get_double(entry, "deadline_offset_seconds", 0.0);
    tenant.deadline_offset_max_seconds = get_double(
        entry, "deadline_offset_max_seconds", tenant.deadline_offset_min_seconds);
    if (tenant.deadline_offset_min_seconds < 0.0 ||
        tenant.deadline_offset_max_seconds < tenant.deadline_offset_min_seconds) {
      fail("tenant '" + tenant.name +
           "': deadline offsets must satisfy 0 <= min <= max");
    }
    profile.tenants.push_back(std::move(tenant));
  }
}

void parse_slo_section(const yaml::Node& node, CampaignProfile& profile) {
  check_keys(node, {"batch_seconds", "standard_seconds", "interactive_seconds"},
             "slo");
  const auto set = [&](api::Priority p, const char* key) {
    const double value = get_double(node, key, 0.0);
    if (value < 0.0) fail(std::string("slo: ") + key + " must be >= 0");
    profile.slo_seconds[static_cast<std::size_t>(p)] = value;
  };
  set(api::Priority::kBatch, "batch_seconds");
  set(api::Priority::kStandard, "standard_seconds");
  set(api::Priority::kInteractive, "interactive_seconds");
}

void parse_churn_section(const yaml::Node& node, CampaignProfile& profile) {
  if (!node.is_sequence()) fail("churn: expected a sequence");
  for (const auto& entry : node.items()) {
    check_keys(entry, {"at_hours", "action", "qpu"}, "churn");
    ChurnEvent event;
    const double at_hours = get_double(entry, "at_hours", -1.0);
    if (at_hours < 0.0) fail("churn: at_hours must be >= 0");
    event.at_seconds = at_hours * 3600.0;
    event.action = parse_churn_action(get_string(entry, "action", ""));
    event.qpu = get_string(entry, "qpu", "");
    if (event.action != ChurnAction::kRecalibrate && event.qpu.empty()) {
      fail("churn: qpu_offline/qpu_online events need a qpu name");
    }
    profile.churn.push_back(std::move(event));
  }
  std::stable_sort(profile.churn.begin(), profile.churn.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

void parse_alerts_section(const yaml::Node& node, CampaignProfile& profile) {
  if (!node.is_sequence()) fail("alerts: expected a sequence");
  for (const auto& entry : node.items()) {
    check_keys(entry,
               {"name", "priority", "attainment_target", "fast_window_seconds",
                "slow_window_seconds", "burn_threshold", "clear_threshold",
                "min_samples"},
               "alert");
    obs::SloRule rule;
    rule.name = get_string(entry, "name", "");
    if (rule.name.empty()) fail("alert: name must be non-empty");
    rule.priority = parse_priority(get_string(entry, "priority", "standard"),
                                   "alert '" + rule.name + "'");
    rule.attainment_target =
        get_double(entry, "attainment_target", rule.attainment_target);
    rule.fast_window_seconds =
        get_double(entry, "fast_window_seconds", rule.fast_window_seconds);
    rule.slow_window_seconds =
        get_double(entry, "slow_window_seconds", rule.slow_window_seconds);
    rule.burn_threshold = get_double(entry, "burn_threshold", rule.burn_threshold);
    rule.clear_threshold =
        get_double(entry, "clear_threshold", rule.clear_threshold);
    rule.min_samples = get_size(entry, "min_samples", rule.min_samples, "alert");
    profile.alerts.push_back(std::move(rule));
  }
}

void validate_profile(const CampaignProfile& profile) {
  if (profile.name.empty()) fail("campaign: name must be non-empty");
  for (const char c : profile.name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '-') {
      // The name lands in artifact file names (BENCH_campaign_<name>.json).
      fail("campaign: name must match [A-Za-z0-9_-]+");
    }
  }
  if (!(profile.duration_hours > 0.0)) fail("campaign: duration_hours must be > 0");
  if (!(profile.stats_interval_seconds > 0.0)) {
    fail("campaign: stats_interval_seconds must be > 0");
  }
  try {
    ArrivalProcess probe(profile.arrivals);  // ctor validates the spec
  } catch (const std::invalid_argument& e) {
    fail(std::string("arrivals: ") + e.what());
  }
  if (profile.num_qpus == 0) fail("fleet: num_qpus must be > 0");
  if (profile.executor_threads == 0) fail("fleet: executor_threads must be > 0");
  if (profile.tenants.empty()) fail("tenants: at least one tenant is required");
  const api::Status sched_status = core::validate_scheduler_config(profile.scheduler);
  if (!sched_status.ok()) fail(sched_status.message());
  const api::Status admission_status =
      core::validate_admission_config(profile.admission);
  if (!admission_status.ok()) fail(admission_status.message());
  for (const obs::SloRule& rule : profile.alerts) {
    const std::string where = "alert '" + rule.name + "': ";
    if (profile.slo_seconds[static_cast<std::size_t>(rule.priority)] <= 0.0) {
      // A burn rule without a latency target has no good/bad verdict to
      // burn against; require the slo: section to cover the class.
      fail(where + "priority class '" + api::priority_name(rule.priority) +
           "' has no slo target (set slo." +
           api::priority_name(rule.priority) + "_seconds)");
    }
    if (!(rule.attainment_target > 0.0 && rule.attainment_target < 1.0)) {
      fail(where + "attainment_target must be in (0, 1)");
    }
    if (!(rule.fast_window_seconds > 0.0) || !(rule.slow_window_seconds > 0.0)) {
      fail(where + "windows must be > 0");
    }
    if (rule.fast_window_seconds > rule.slow_window_seconds) {
      fail(where + "fast_window_seconds must be <= slow_window_seconds");
    }
    if (!(rule.burn_threshold > 0.0)) fail(where + "burn_threshold must be > 0");
    if (rule.clear_threshold < 0.0 || rule.clear_threshold > rule.burn_threshold) {
      fail(where + "clear_threshold must be in [0, burn_threshold]");
    }
  }
  if (profile.pacing == PacingMode::kLockstep) {
    // The determinism contract: one engine worker serializes park order,
    // and a full-queue cycle leaves nothing behind for a racy timer fire.
    if (profile.executor_threads != 1) {
      fail("campaign: pacing lockstep requires executor_threads == 1");
    }
    if (profile.scheduler.max_batch_size != 0) {
      fail("campaign: pacing lockstep requires max_batch_size == 0 "
           "(a capped cycle leaves a remainder for a nondeterministic timer fire)");
    }
    if (profile.admission.max_live_runs != 0 &&
        profile.admission.max_live_runs < profile.scheduler.queue_threshold) {
      // Live runs in lockstep equal the in-flight group; a gate tighter
      // than the group size means no group can ever fill — the campaign
      // would stall until the real-time linger fired nondeterministically.
      fail("campaign: pacing lockstep requires max_live_runs >= queue_threshold "
           "(a tighter gate starves the threshold group)");
    }
  }
}

}  // namespace

const char* pacing_mode_name(PacingMode mode) {
  switch (mode) {
    case PacingMode::kLockstep: return "lockstep";
    case PacingMode::kWindowed: return "windowed";
  }
  return "?";
}

const char* churn_action_name(ChurnAction action) {
  switch (action) {
    case ChurnAction::kQpuOffline: return "qpu_offline";
    case ChurnAction::kQpuOnline: return "qpu_online";
    case ChurnAction::kRecalibrate: return "recalibrate";
  }
  return "?";
}

api::Result<CampaignProfile> parse_profile(const std::string& text) {
  yaml::Node root;
  try {
    root = yaml::parse(text);
  } catch (const yaml::ParseError& e) {
    return api::InvalidArgument(std::string("campaign profile: ") + e.what());
  }
  try {
    if (!root.is_mapping()) {
      fail("top level must be a mapping with campaign/arrivals/tenants sections");
    }
    check_keys(root,
               {"campaign", "arrivals", "fleet", "scheduler", "admission",
                "tenants", "slo", "churn", "alerts"},
               "profile");
    CampaignProfile profile;
    if (root.has("campaign")) parse_campaign_section(root.at("campaign"), profile);
    if (root.has("arrivals")) parse_arrivals_section(root.at("arrivals"), profile);
    if (root.has("fleet")) parse_fleet_section(root.at("fleet"), profile);
    if (root.has("scheduler")) parse_scheduler_section(root.at("scheduler"), profile);
    if (root.has("admission")) parse_admission_section(root.at("admission"), profile);
    if (root.has("tenants")) parse_tenants_section(root.at("tenants"), profile);
    if (root.has("slo")) parse_slo_section(root.at("slo"), profile);
    if (root.has("churn")) parse_churn_section(root.at("churn"), profile);
    if (root.has("alerts")) parse_alerts_section(root.at("alerts"), profile);
    validate_profile(profile);
    return profile;
  } catch (const std::exception& e) {
    // yamlite accessor misuse (std::logic_error / std::out_of_range) and
    // the fail() paths above all land here: malformed profile, typed error.
    return api::InvalidArgument(std::string("campaign profile: ") + e.what());
  }
}

api::Result<CampaignProfile> load_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return api::NotFound("campaign profile: cannot read '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse_profile(text.str());
}

core::QonductorConfig make_orchestrator_config(const CampaignProfile& profile) {
  core::QonductorConfig config;
  config.num_qpus = profile.num_qpus;
  config.seed = profile.seed;
  config.executor_threads = profile.executor_threads;
  config.trajectory_width_limit = profile.trajectory_width_limit;
  config.scheduler_service = profile.scheduler;
  if (profile.pacing == PacingMode::kLockstep) {
    // The linger is the real-time grace before a nondeterministic timer
    // fire; lockstep groups park within microseconds, so a large linger is
    // never actually waited on — it only guards cycle determinism against
    // a slow machine.
    config.scheduler_service.linger = std::chrono::milliseconds(10000);
  }
  config.admission = profile.admission;
  config.retention.max_terminal_runs = profile.max_terminal_runs;
  config.telemetry.tracing = false;
  config.telemetry.metrics = true;
  return config;
}

}  // namespace qon::campaign
