#pragma once
// The campaign driver: loads a CampaignProfile, stands up the REAL
// api::QonductorClient / orchestrator / scheduler-service stack, and
// drives profile arrivals through it on the fleet virtual clock — a
// million runs of virtual time in minutes of wall time, with per-interval
// stats streaming to a JSONL/CSV sink and a final CampaignReport.
//
// Pacing modes (see PacingMode in profile.hpp):
//
//   lockstep — the determinism contract. One engine worker, arrivals
//     admitted in groups of exactly queue_threshold parked tasks; after
//     each admitted run the driver waits for the park to land in the
//     pending queue, and after the group's threshold cycle fires it waits
//     every member to settle before advancing the clock again. Every
//     scheduling cycle is a threshold cycle at a deterministic virtual
//     instant, so two campaigns with the same profile produce
//     byte-identical stats streams and identical (wall-excluded) reports.
//
//   windowed — throughput mode. Arrivals stream with a bounded window of
//     outstanding runs; real-time cycle races make outcomes vary run to
//     run. Use it to measure, not to reproduce.
//
// Memory stays bounded regardless of campaign length: the run table keeps
// max_terminal_runs terminal records, tracing is off, stats stream out
// through the batched sink, and latency distributions accumulate into
// fixed-size log-bucket grids.

#include <string>

#include "api/result.hpp"
#include "campaign/profile.hpp"
#include "campaign/report.hpp"
#include "campaign/sink.hpp"

namespace qon::campaign {

struct CampaignOptions {
  /// Per-interval stats stream destination; empty = no stream.
  std::string stats_path;
  StatsFormat stats_format = StatsFormat::kJsonl;
  /// Rows buffered per sink write (COutput-style batching).
  std::size_t sink_batch_rows = 64;
  /// Coarse progress lines on stderr (wall-clock side channel; never
  /// touches the stats stream).
  bool print_progress = false;
  /// Alert-timeline stream destination (one row per SLO alert state
  /// transition, same format as the stats stream); empty = no stream.
  /// Only written when the profile configures `alerts:` rules.
  std::string alerts_path;
};

/// The streamed row schema, in column order (all cells numeric).
const std::vector<std::string>& campaign_stats_columns();

/// The alert-timeline row schema, in column order (rule/priority/state
/// cells are JSON strings, the rest numeric).
const std::vector<std::string>& campaign_alert_columns();

/// Runs the campaign described by `profile` end to end. INVALID_ARGUMENT
/// for churn events naming unknown QPUs; INTERNAL when the stack fails to
/// stand up; otherwise the final report.
api::Result<CampaignReport> run_campaign(const CampaignProfile& profile,
                                         const CampaignOptions& options = {});

}  // namespace qon::campaign
