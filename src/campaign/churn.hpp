#pragma once
// Fleet churn injection: applies a profile's scheduled QPU events
// (offline / online / fleet recalibration) as the campaign's virtual clock
// sweeps past their instants. Events fire in at_seconds order from the
// driver's pacing loop — single-threaded, deterministic.

#include <vector>

#include "campaign/profile.hpp"
#include "core/orchestrator.hpp"

namespace qon::campaign {

class ChurnInjector {
 public:
  /// `events` must be sorted by at_seconds (the profile parser sorts).
  explicit ChurnInjector(std::vector<ChurnEvent> events);

  /// Validates every referenced QPU name against the live fleet.
  /// INVALID_ARGUMENT naming the offending event otherwise — checked once
  /// at campaign start so a typo fails before a million runs, not at hour 40.
  api::Status validate(core::Qonductor& orchestrator) const;

  /// Applies every event with at_seconds <= now; returns how many fired.
  std::size_t apply_due(double now, core::Qonductor& orchestrator);

  std::size_t applied() const { return next_; }
  std::size_t remaining() const { return events_.size() - next_; }

 private:
  std::vector<ChurnEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace qon::campaign
