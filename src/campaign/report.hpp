#pragma once
// Campaign result assembly: streaming latency accumulators (fixed-size
// log-spaced bucket grids — a million observations cost the same memory as
// ten), the final per-class report with SLO attainment, and the
// BENCH_campaign_<profile>.json writer.
//
// Determinism note for the JSON artifact: every wall-clock-derived value
// is emitted on a line whose text contains "wall", so CI can compare two
// same-seed reports with `grep -v wall | diff`. Everything else is a pure
// function of the profile.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/types.hpp"
#include "campaign/profile.hpp"

namespace qon::campaign {

/// Streaming latency distribution: O(1) per observation, fixed memory.
/// Observations land in geometric buckets spanning [1 ms, 1e6 s] at 32
/// buckets per decade (~7.5% relative resolution); quantiles interpolate
/// geometrically inside the landing bucket.
class LatencyAccumulator {
 public:
  LatencyAccumulator();

  void observe(double seconds);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// The q-quantile (q in [0, 1]) by bucket interpolation; exact at the
  /// observed min/max ends. 0 when empty.
  double quantile(double q) const;

  /// Fraction of observations <= seconds (bucket-interpolated) — the SLO
  /// attainment measure. 1 when empty (a vacuous SLO holds).
  double fraction_below(double seconds) const;

 private:
  std::size_t bucket_index(double seconds) const;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One priority class's end-to-end latency outcome.
struct ClassReport {
  api::Priority priority = api::Priority::kStandard;
  std::uint64_t completed = 0;
  double mean_latency_seconds = 0.0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  double slo_seconds = 0.0;    ///< 0 = no target configured
  double slo_attainment = 1.0; ///< fraction of completions within the SLO
};

struct CampaignReport {
  std::string profile_name;
  std::uint64_t seed = 0;
  std::string pacing;
  std::string arrival_process;

  // Totals over the whole campaign (virtual-domain, deterministic).
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;              ///< RESOURCE_EXHAUSTED at the gate
  std::uint64_t rejected = 0;          ///< other invoke-time failures
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;            ///< terminal kFailed (incl. expiries)
  std::uint64_t cancelled = 0;
  std::uint64_t jobs_expired = 0;      ///< DEADLINE_EXCEEDED while parked
  std::uint64_t jobs_filtered = 0;     ///< fit no online QPU
  std::uint64_t sched_cycles = 0;
  std::uint64_t churn_applied = 0;
  std::uint64_t stats_rows = 0;
  std::string stats_path;

  // SLO burn-rate alert timeline (virtual-domain, deterministic).
  std::uint64_t alerts_fired = 0;      ///< transitions into kFiring
  std::uint64_t alerts_resolved = 0;   ///< transitions into kResolved
  std::uint64_t alert_transitions = 0; ///< all state transitions
  std::string alerts_stats_path;

  double virtual_duration_seconds = 0.0;  ///< final fleet-clock frontier
  double wall_seconds = 0.0;              ///< real elapsed driver time

  std::vector<ClassReport> classes;       ///< one per priority with traffic
};

/// Writes the report as pretty-printed JSON. Throws std::runtime_error
/// when the file cannot be written.
void write_report_json(const CampaignReport& report, const std::string& path);

/// Renders the per-class SLO table (the campaign_quickstart output).
void print_slo_table(std::ostream& os, const CampaignReport& report);

}  // namespace qon::campaign
