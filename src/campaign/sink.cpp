#include "campaign/sink.hpp"

#include <stdexcept>

namespace qon::campaign {

const char* stats_format_name(StatsFormat format) {
  switch (format) {
    case StatsFormat::kJsonl: return "jsonl";
    case StatsFormat::kCsv: return "csv";
  }
  return "?";
}

StatsSink::StatsSink(const std::string& path, StatsFormat format,
                     std::vector<std::string> columns, std::size_t batch_rows)
    : path_(path),
      format_(format),
      columns_(std::move(columns)),
      batch_rows_(batch_rows == 0 ? 1 : batch_rows),
      out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("StatsSink: cannot open '" + path + "' for writing");
  }
  if (columns_.empty()) {
    throw std::runtime_error("StatsSink: at least one column is required");
  }
  if (format_ == StatsFormat::kCsv) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i != 0) buffer_ += ',';
      buffer_ += columns_[i];
    }
    buffer_ += '\n';
  }
}

StatsSink::~StatsSink() {
  try {
    flush();
  } catch (...) {
    // Destructor must not throw; a failed final flush surfaces as a short
    // file, which the determinism cmp in CI catches.
  }
}

void StatsSink::append(const std::vector<std::string>& values) {
  if (values.size() != columns_.size()) {
    throw std::runtime_error("StatsSink: row has " + std::to_string(values.size()) +
                             " cells, schema has " + std::to_string(columns_.size()));
  }
  if (format_ == StatsFormat::kJsonl) {
    buffer_ += '{';
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) buffer_ += ',';
      buffer_ += '"';
      buffer_ += columns_[i];
      buffer_ += "\":";
      buffer_ += values[i];
    }
    buffer_ += "}\n";
  } else {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i != 0) buffer_ += ',';
      buffer_ += values[i];
    }
    buffer_ += '\n';
  }
  ++rows_written_;
  if (++buffered_rows_ >= batch_rows_) flush();
}

void StatsSink::flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("StatsSink: write to '" + path_ + "' failed");
  buffer_.clear();
  buffered_rows_ = 0;
}

}  // namespace qon::campaign
