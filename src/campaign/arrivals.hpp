#pragma once
// Seeded arrival-process generators — the one source of truth for every
// workload arrival model in the tree. The cloudsim load generator
// (cloudsim/workload.cpp) and the campaign driver (campaign/driver.cpp)
// both draw their arrival instants here, so a profile that says
// "diurnal, 1500 jobs/hour" produces the same seeded trace whether it
// feeds the standalone discrete-event simulation or the real orchestrator.
//
// Four processes:
//   kPoisson     — homogeneous Poisson at rate_per_hour.
//   kDiurnal     — inhomogeneous Poisson via thinning, sinusoid between
//                  diurnal_low_ratio and diurnal_high_ratio of the base
//                  rate (defaults reproduce the measured IBM 1100-2050 j/h
//                  band around a 1500 mean, period 24 h — §8.2).
//   kPareto      — heavy-tailed renewal process: Pareto inter-arrival gaps
//                  with shape pareto_alpha (> 1), scaled so the MEAN rate
//                  matches rate_per_hour. Produces the bursty long-tail
//                  traffic the million-run campaigns stress.
//   kFlashCrowd  — Poisson baseline with a spike window multiplying the
//                  rate (thinning, like kDiurnal): the overload scenario.
//
// RNG consumption is part of the contract (seeded workloads reproduce
// bit-for-bit, and cloudsim's pre-existing traces must not move): one gap
// draw per candidate, plus one bernoulli per thinning test on candidates
// inside the horizon; a candidate at/past the horizon consumes no
// thinning draw.

#include <string>

#include "common/rng.hpp"

namespace qon::campaign {

enum class ArrivalKind { kPoisson, kDiurnal, kPareto, kFlashCrowd };

const char* arrival_kind_name(ArrivalKind kind);

/// Declarative description of one arrival process (the `arrivals:` section
/// of a campaign profile).
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Base (kPoisson/kFlashCrowd), band-center-defining (kDiurnal) or mean
  /// (kPareto) arrival rate.
  double rate_per_hour = 1500.0;
  /// Diurnal band as ratios of rate_per_hour. The defaults reproduce the
  /// measured IBM band: 1100..2050 jobs/hour around a 1500 mean.
  double diurnal_low_ratio = 1100.0 / 1500.0;
  double diurnal_high_ratio = 2050.0 / 1500.0;
  double period_hours = 24.0;
  /// Pareto shape; must be > 1 so the mean inter-arrival gap is finite
  /// (the scale is derived from rate_per_hour). Smaller = heavier tail.
  double pareto_alpha = 1.5;
  /// Flash-crowd spike window [start, start + duration) on the virtual
  /// clock, multiplying the base rate by spike_multiplier inside it.
  double spike_start_hours = 1.0;
  double spike_duration_hours = 0.25;
  double spike_multiplier = 8.0;
};

/// One arrival process. Stateless between calls — the caller owns the
/// current time and the Rng, so two processes built from the same spec are
/// interchangeable.
class ArrivalProcess {
 public:
  /// Throws std::invalid_argument on out-of-range spec knobs; the campaign
  /// profile parser validates first and returns a typed INVALID_ARGUMENT.
  explicit ArrivalProcess(ArrivalSpec spec);

  const ArrivalSpec& spec() const { return spec_; }

  /// Instantaneous arrival rate (jobs/hour) at virtual time `t_seconds`.
  double rate_at(double t_seconds) const;

  /// The peak of rate_at over all t — the rate the thinning loop draws
  /// candidate gaps at.
  double max_rate_per_hour() const;

  /// The next accepted arrival strictly after `t` (seconds); a returned
  /// value >= `horizon` means the process produced no further arrival
  /// inside the horizon. See the header comment for the RNG contract.
  double next(double t, double horizon, Rng& rng) const;

 private:
  ArrivalSpec spec_;
  bool thinned_ = false;     ///< kDiurnal / kFlashCrowd draw a bernoulli per candidate
  double pareto_scale_ = 0.0;  ///< x_m of the Pareto gap distribution, seconds
};

}  // namespace qon::campaign
