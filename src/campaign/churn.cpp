#include "campaign/churn.hpp"

#include <algorithm>

namespace qon::campaign {

ChurnInjector::ChurnInjector(std::vector<ChurnEvent> events)
    : events_(std::move(events)) {}

api::Status ChurnInjector::validate(core::Qonductor& orchestrator) const {
  const std::vector<std::string> names = orchestrator.monitor().qpu_names();
  for (const ChurnEvent& event : events_) {
    if (event.action == ChurnAction::kRecalibrate) continue;
    if (std::find(names.begin(), names.end(), event.qpu) == names.end()) {
      return api::InvalidArgument("campaign churn: unknown qpu '" + event.qpu +
                                  "' in " + std::string(churn_action_name(event.action)) +
                                  " event at t=" + std::to_string(event.at_seconds) + " s");
    }
  }
  return api::Status::Ok();
}

std::size_t ChurnInjector::apply_due(double now, core::Qonductor& orchestrator) {
  std::size_t fired = 0;
  while (next_ < events_.size() && events_[next_].at_seconds <= now) {
    const ChurnEvent& event = events_[next_];
    switch (event.action) {
      case ChurnAction::kQpuOffline:
        orchestrator.monitor().set_qpu_online(event.qpu, false);
        break;
      case ChurnAction::kQpuOnline:
        orchestrator.monitor().set_qpu_online(event.qpu, true);
        break;
      case ChurnAction::kRecalibrate:
        orchestrator.recalibrateFleet();
        break;
    }
    ++next_;
    ++fired;
  }
  return fired;
}

}  // namespace qon::campaign
