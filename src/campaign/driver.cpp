#include "campaign/driver.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "campaign/churn.hpp"
#include "circuit/library.hpp"
#include "common/rng.hpp"
#include "obs/delta.hpp"
#include "obs/slo.hpp"
#include "workflow/task.hpp"

namespace qon::campaign {

namespace {

std::string priority_label(api::Priority p) {
  return std::string("priority=\"") + api::priority_name(p) + "\"";
}

std::string status_label(api::RunStatus s) {
  return std::string("status=\"") + api::run_status_name(s) + "\"";
}

std::string format_fixed(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_count(double value) {
  return std::to_string(static_cast<std::uint64_t>(std::llround(value)));
}

/// Sink cells are inserted verbatim, so string-valued alert cells must be
/// pre-quoted to stay valid JSON in the JSONL stream.
std::string quoted(const std::string& text) { return "\"" + text + "\""; }

double counter_value(const api::MetricsSnapshot& snapshot, const std::string& name,
                     const std::string& labels = "") {
  const api::MetricValue* metric = obs::find_metric(snapshot, name, labels);
  return metric ? metric->value : 0.0;
}

/// Driver-side campaign counters (the virtual-domain totals).
struct Totals {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

}  // namespace

const std::vector<std::string>& campaign_alert_columns() {
  static const std::vector<std::string> kColumns = {
      "row", "t_virtual", "rule", "priority", "state", "fast_burn", "slow_burn"};
  return kColumns;
}

const std::vector<std::string>& campaign_stats_columns() {
  static const std::vector<std::string> kColumns = {
      "row",           "t_end",          "arrivals",      "admitted",
      "shed",          "rejected",       "completed",     "failed",
      "cancelled",     "sched_cycles",   "jobs_scheduled", "jobs_filtered",
      "jobs_expired",  "queue_depth",    "latency_count", "latency_sum_seconds"};
  return kColumns;
}

api::Result<CampaignReport> run_campaign(const CampaignProfile& profile,
                                         const CampaignOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();

  api::QonductorClient client(make_orchestrator_config(profile));
  core::Qonductor& backend = client.backend();
  core::SchedulerService* sched = backend.schedulerService();

  // -- tenant images: one single-quantum-task workflow each ---------------------
  std::vector<workflow::ImageId> images;
  std::vector<double> weights;
  images.reserve(profile.tenants.size());
  for (std::size_t i = 0; i < profile.tenants.size(); ++i) {
    const TenantSpec& tenant = profile.tenants[i];
    api::CreateWorkflowRequest create;
    create.name = tenant.name;
    // Image circuits are seeded from the profile seed + tenant index, so
    // the deployed fleet of workflows is itself a function of the profile.
    create.tasks.push_back(workflow::HybridTask::quantum(
        tenant.name,
        circuit::make_benchmark(tenant.family, tenant.width,
                                profile.seed ^ (0x7e1aULL + i * 0x9e3779b9ULL)),
        tenant.shots));
    auto created = client.createWorkflow(std::move(create));
    if (!created.ok()) return created.status();
    api::DeployRequest deploy;
    deploy.image = created->image;
    auto deployed = client.deploy(deploy);
    if (!deployed.ok()) return deployed.status();
    images.push_back(created->image);
    weights.push_back(tenant.weight);
  }

  // -- churn: validate QPU names before hour one, not at hour forty -------------
  ChurnInjector churn(profile.churn);
  if (const api::Status status = churn.validate(backend); !status.ok()) return status;

  // -- deterministic RNG paths --------------------------------------------------
  // One root seed, split into independent streams: arrival instants and the
  // tenant-mix / preference draws never perturb each other.
  Rng root(profile.seed);
  Rng arrival_rng = root.split();
  Rng mix_rng = root.split();
  const ArrivalProcess arrivals(profile.arrivals);

  // -- stats stream -------------------------------------------------------------
  std::unique_ptr<StatsSink> sink;
  if (!options.stats_path.empty()) {
    sink = std::make_unique<StatsSink>(options.stats_path, options.stats_format,
                                       campaign_stats_columns(),
                                       options.sink_batch_rows);
  }

  // -- SLO burn-rate alert timeline ---------------------------------------------
  // The driver owns its own monitor (distinct from the orchestrator's live
  // one) fed from the deterministic reap order below, so the alert timeline
  // is byte-identical across same-profile lockstep runs.
  std::unique_ptr<obs::SloMonitor> slo;
  std::unique_ptr<StatsSink> alert_sink;
  if (!profile.alerts.empty()) {
    slo = std::make_unique<obs::SloMonitor>(profile.slo_seconds, profile.alerts);
    if (!options.alerts_path.empty()) {
      alert_sink = std::make_unique<StatsSink>(
          options.alerts_path, options.stats_format, campaign_alert_columns(),
          options.sink_batch_rows);
    }
  }
  std::uint64_t alert_rows = 0;
  std::uint64_t alerts_fired = 0;
  std::uint64_t alerts_resolved = 0;
  std::uint64_t alert_transitions = 0;

  Totals totals;
  std::uint64_t churn_applied = 0;
  std::array<std::uint64_t, api::kNumPriorities> admitted_by_priority{};
  std::array<LatencyAccumulator, api::kNumPriorities> latency_by_priority;

  api::MetricsSnapshot prev_snapshot = backend.telemetry().snapshot(0.0);
  Totals row_base;  // totals at the last emitted row
  double last_row_t = 0.0;
  std::uint64_t rows = 0;

  const auto emit_row = [&](bool force) {
    if (!sink && !slo) return;
    const double now_v = backend.fleetNow();
    if (!force && now_v - last_row_t < profile.stats_interval_seconds) return;
    last_row_t = now_v;
    if (slo) {
      // Burn rules advance on the same virtual-time cadence as the stats
      // rows; each state transition streams as one timeline row.
      for (const obs::AlertTransition& tr : slo->evaluate(now_v)) {
        ++alert_transitions;
        if (tr.state == api::AlertState::kFiring) ++alerts_fired;
        if (tr.state == api::AlertState::kResolved) ++alerts_resolved;
        if (alert_sink) {
          alert_sink->append({
              std::to_string(alert_rows),
              format_fixed(tr.at_virtual, 3),
              quoted(tr.rule),
              quoted(api::priority_name(tr.priority)),
              quoted(api::alert_state_name(tr.state)),
              format_fixed(tr.fast_burn, 6),
              format_fixed(tr.slow_burn, 6),
          });
        }
        ++alert_rows;
      }
    }
    if (!sink) return;
    api::MetricsSnapshot cur = backend.telemetry().snapshot(now_v);
    const api::MetricsSnapshot delta = obs::snapshot_delta(prev_snapshot, cur);
    double latency_count = 0.0;
    double latency_sum = 0.0;
    for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
      const api::MetricValue* hist =
          obs::find_metric(delta, "qon_run_latency_seconds",
                           priority_label(static_cast<api::Priority>(p)));
      if (hist != nullptr) {
        latency_count += static_cast<double>(hist->count);
        latency_sum += hist->sum;
      }
    }
    sink->append({
        std::to_string(rows),
        format_fixed(now_v, 3),
        std::to_string(totals.arrivals - row_base.arrivals),
        std::to_string(totals.admitted - row_base.admitted),
        std::to_string(totals.shed - row_base.shed),
        std::to_string(totals.rejected - row_base.rejected),
        format_count(counter_value(delta, "qon_runs_finished_total",
                                   status_label(api::RunStatus::kCompleted))),
        format_count(counter_value(delta, "qon_runs_finished_total",
                                   status_label(api::RunStatus::kFailed))),
        format_count(counter_value(delta, "qon_runs_finished_total",
                                   status_label(api::RunStatus::kCancelled))),
        format_count(counter_value(delta, "qon_sched_cycles_total")),
        format_count(counter_value(delta, "qon_sched_jobs_scheduled_total")),
        format_count(counter_value(delta, "qon_sched_jobs_filtered_total")),
        format_count(counter_value(delta, "qon_sched_jobs_expired_total")),
        format_count(counter_value(cur, "qon_sched_queue_depth")),
        format_count(latency_count),
        format_fixed(latency_sum, 6),
    });
    ++rows;
    prev_snapshot = std::move(cur);
    row_base = totals;
  };

  const auto reap = [&](const api::RunHandle& handle) {
    handle.wait();
    const api::Result<api::RunInfo> info = handle.info();
    if (!info.ok()) {
      ++totals.failed;  // unreachable with a valid handle; count, don't drop
      return;
    }
    switch (info->status) {
      case api::RunStatus::kCompleted: {
        ++totals.completed;
        const std::size_t p = static_cast<std::size_t>(info->preferences.priority);
        latency_by_priority[p].observe(info->finished_at - info->submitted_at);
        break;
      }
      case api::RunStatus::kFailed:
        ++totals.failed;
        break;
      case api::RunStatus::kCancelled:
        ++totals.cancelled;
        break;
      default:
        ++totals.failed;  // wait() only returns terminal states
        break;
    }
    if (slo) {
      // Every terminal run is an SLI sample at its terminal virtual
      // instant: failed/cancelled runs burn budget, completions burn only
      // when late.
      slo->record(info->preferences.priority,
                  std::max(0.0, info->finished_at - info->submitted_at),
                  info->finished_at,
                  info->status == api::RunStatus::kCompleted);
    }
  };

  // Lockstep pacing: wait for each admitted run's park to land in the
  // pending queue so the group's Kth member deterministically trips the
  // threshold. Bounded wall-time escape hatch — a stuck stack degrades to
  // nondeterminism instead of hanging the campaign.
  const auto spin_until_depth = [&](std::size_t depth) {
    if (sched == nullptr) return;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sched->queue_depth() != depth &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };

  const std::size_t threshold = profile.scheduler.queue_threshold;
  const bool lockstep = profile.pacing == PacingMode::kLockstep;
  // Windowed mode bounds outstanding handles; lockstep bounds them at the
  // group size by construction.
  const std::size_t window_cap =
      profile.admission.max_live_runs > 0
          ? profile.admission.max_live_runs
          : std::max<std::size_t>(4 * threshold, 256);

  std::vector<api::RunHandle> group;   // lockstep: the in-flight group
  group.reserve(threshold);
  std::deque<api::RunHandle> window;   // windowed: outstanding runs

  const double horizon = profile.duration_hours * 3600.0;
  double t = 0.0;
  for (;;) {
    if (profile.target_runs != 0 && totals.arrivals >= profile.target_runs) break;
    t = arrivals.next(t, horizon, arrival_rng);
    if (t >= horizon) break;
    ++totals.arrivals;

    backend.advanceFleetClock(t);
    churn_applied += churn.apply_due(t, backend);

    const std::size_t tenant_index =
        profile.tenants.size() == 1 ? 0 : mix_rng.weighted_index(weights);
    const TenantSpec& tenant = profile.tenants[tenant_index];
    api::InvokeRequest invoke;
    invoke.image = images[tenant_index];
    invoke.preferences.priority = tenant.priority;
    invoke.preferences.fidelity_weight = tenant.fidelity_weight;
    if (tenant.deadline_offset_max_seconds > 0.0) {
      const double offset =
          tenant.deadline_offset_max_seconds > tenant.deadline_offset_min_seconds
              ? mix_rng.uniform(tenant.deadline_offset_min_seconds,
                                tenant.deadline_offset_max_seconds)
              : tenant.deadline_offset_max_seconds;
      invoke.preferences.deadline_seconds = t + offset;
    }

    api::Result<api::RunHandle> handle = client.invoke(invoke);
    if (!handle.ok()) {
      if (handle.status().code() == api::StatusCode::kResourceExhausted) {
        ++totals.shed;
      } else {
        ++totals.rejected;
      }
      // Request-level SLI: a refused request (admission shed, dead-on-
      // arrival deadline) burns the class error budget at the refusal
      // instant — the fleet frontier, the same timeline settles land on.
      if (slo) slo->record(tenant.priority, 0.0, backend.fleetNow(), false);
    } else {
      ++totals.admitted;
      ++admitted_by_priority[static_cast<std::size_t>(tenant.priority)];
      if (lockstep) {
        group.push_back(std::move(*handle));
        if (group.size() < threshold) {
          spin_until_depth(group.size());
        } else {
          // The threshold member trips the cycle — the queue drains, the
          // group settles, and only then does the clock move again.
          for (const api::RunHandle& h : group) reap(h);
          group.clear();
          emit_row(false);
        }
      } else {
        window.push_back(std::move(*handle));
        if (window.size() >= window_cap) {
          reap(window.front());
          window.pop_front();
        }
        emit_row(false);
      }
    }

    if (options.print_progress && totals.arrivals % 100000 == 0) {
      std::fprintf(stderr, "campaign %s: %" PRIu64 " arrivals, t=%.0f s\n",
                   profile.name.c_str(), totals.arrivals, t);
    }
  }

  // Drain: close the queue — the scheduler's flush cycle settles the
  // partial group at the current (deterministic) clock frontier.
  if (sched != nullptr) sched->shutdown();
  for (const api::RunHandle& h : group) reap(h);
  group.clear();
  for (const api::RunHandle& h : window) reap(h);
  window.clear();

  emit_row(true);  // the stream always ends with a final (partial) row
  if (sink) sink->flush();
  if (alert_sink) alert_sink->flush();

  // -- report -------------------------------------------------------------------
  const api::MetricsSnapshot final_snapshot =
      backend.telemetry().snapshot(backend.fleetNow());
  CampaignReport report;
  report.profile_name = profile.name;
  report.seed = profile.seed;
  report.pacing = pacing_mode_name(profile.pacing);
  report.arrival_process = arrival_kind_name(profile.arrivals.kind);
  report.arrivals = totals.arrivals;
  report.admitted = totals.admitted;
  report.shed = totals.shed;
  report.rejected = totals.rejected;
  report.completed = totals.completed;
  report.failed = totals.failed;
  report.cancelled = totals.cancelled;
  report.jobs_expired = static_cast<std::uint64_t>(
      std::llround(counter_value(final_snapshot, "qon_sched_jobs_expired_total")));
  report.jobs_filtered = static_cast<std::uint64_t>(
      std::llround(counter_value(final_snapshot, "qon_sched_jobs_filtered_total")));
  report.sched_cycles = static_cast<std::uint64_t>(
      std::llround(counter_value(final_snapshot, "qon_sched_cycles_total")));
  report.churn_applied = churn_applied;
  report.stats_rows = rows;
  report.stats_path = options.stats_path;
  report.alerts_fired = alerts_fired;
  report.alerts_resolved = alerts_resolved;
  report.alert_transitions = alert_transitions;
  if (alert_sink) report.alerts_stats_path = options.alerts_path;
  report.virtual_duration_seconds = backend.fleetNow();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
    if (admitted_by_priority[p] == 0) continue;
    const LatencyAccumulator& acc = latency_by_priority[p];
    ClassReport cls;
    cls.priority = static_cast<api::Priority>(p);
    cls.completed = acc.count();
    cls.mean_latency_seconds = acc.mean();
    cls.p50_seconds = acc.quantile(0.50);
    cls.p90_seconds = acc.quantile(0.90);
    cls.p99_seconds = acc.quantile(0.99);
    cls.slo_seconds = profile.slo_seconds[p];
    cls.slo_attainment =
        cls.slo_seconds > 0.0 ? acc.fraction_below(cls.slo_seconds) : 1.0;
    report.classes.push_back(cls);
  }
  return report;
}

}  // namespace qon::campaign
