#pragma once
// Streaming per-interval stats sink: append-only JSONL or CSV with batched
// buffered writes (the gacspp COutput shape — rows accumulate in a small
// in-memory batch and hit the file in one write() per batch, never one
// syscall per row, never an unbounded in-memory ring).
//
// The sink is deliberately dumb: callers pass every cell pre-formatted as
// a string and the sink emits it verbatim (all campaign columns are
// numeric, so JSONL rows need no quoting/escaping). Formatting at the
// call site is what makes the determinism contract checkable — two runs
// of the same seed produce byte-identical files, which CI asserts with
// cmp(1).

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace qon::campaign {

enum class StatsFormat { kJsonl, kCsv };

const char* stats_format_name(StatsFormat format);

/// Single-writer streaming sink. Not thread-safe — the campaign driver is
/// the only producer and appends from its pacing loop.
class StatsSink {
 public:
  /// Opens `path` for truncating write. `columns` fixes the row schema:
  /// JSONL keys / the CSV header line. Throws std::runtime_error when the
  /// file cannot be opened.
  StatsSink(const std::string& path, StatsFormat format,
            std::vector<std::string> columns, std::size_t batch_rows = 64);
  ~StatsSink();

  StatsSink(const StatsSink&) = delete;
  StatsSink& operator=(const StatsSink&) = delete;

  /// Appends one row; `values` must match columns() in size and order and
  /// is inserted verbatim (pre-formatted, numeric). Buffered until
  /// batch_rows rows accumulate.
  void append(const std::vector<std::string>& values);

  /// Flushes the current batch to the file.
  void flush();

  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_written_; }

 private:
  std::string path_;
  StatsFormat format_;
  std::vector<std::string> columns_;
  std::size_t batch_rows_;
  std::ofstream out_;
  std::string buffer_;           ///< pending batch, pre-rendered
  std::size_t buffered_rows_ = 0;
  std::size_t rows_written_ = 0;
};

}  // namespace qon::campaign
