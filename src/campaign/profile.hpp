#pragma once
// Declarative campaign profiles: the yamlite schema describing a scenario
// campaign — arrival process, tenant mix (per-tenant api::JobPreferences
// distributions), fleet/scheduler/admission knobs, churn events and SLO
// targets — plus the parser that turns profile text into a validated
// CampaignProfile. Malformed or out-of-range profiles surface as a typed
// INVALID_ARGUMENT (yamlite's ParseError never crosses this boundary).
//
// Schema (all sections optional except `tenants`; see profiles/README.md):
//
//   campaign:
//     name: heavy_tailed          # [a-zA-Z0-9_-]+, names the artifacts
//     seed: 42
//     duration_hours: 48          # virtual-time horizon
//     target_runs: 1000000        # stop after N arrivals; 0 = horizon only
//     stats_interval_seconds: 3600
//     pacing: lockstep            # lockstep | windowed
//   arrivals:
//     process: pareto             # poisson | diurnal | pareto | flash_crowd
//     rate_per_hour: 1500
//     pareto_alpha: 1.6           # per-process extras, see ArrivalSpec
//   fleet:
//     num_qpus: 4
//     executor_threads: 1
//     trajectory_width_limit: 0
//     max_terminal_runs: 2048
//   scheduler:                    # core::SchedulerServiceConfig knobs
//     queue_threshold: 500
//     interval_seconds: 120
//     queue_capacity: 4096
//   admission:                    # core::AdmissionConfig knobs
//     max_live_runs: 0
//   tenants:
//     - name: interactive-small
//       weight: 0.2
//       priority: interactive     # batch | standard | interactive
//       circuit: ghz              # benchmark family (circuit/library.hpp)
//       width: 4
//       shots: 512
//       fidelity_weight: 0.7
//       deadline_offset_seconds: 300        # fixed relative deadline
//       deadline_offset_max_seconds: 600    # optional: uniform in [min,max]
//   slo:
//     interactive_seconds: 600
//     standard_seconds: 1800
//     batch_seconds: 7200
//   churn:
//     - at_hours: 10
//       action: qpu_offline       # qpu_offline | qpu_online | recalibrate
//       qpu: auckland
//   alerts:                       # SLO burn-rate rules (see CampaignProfile)
//     - name: interactive-burn
//       priority: interactive
//       attainment_target: 0.9
//
// Determinism contract: with `pacing: lockstep` the whole campaign is a
// pure function of the profile (see campaign/driver.hpp), which the parser
// enforces structurally — lockstep requires executor_threads == 1 and
// max_batch_size == 0 so every scheduling cycle is a full-queue threshold
// cycle at a deterministic virtual instant.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "api/types.hpp"
#include "campaign/arrivals.hpp"
#include "circuit/library.hpp"
#include "core/orchestrator.hpp"

namespace qon::campaign {

/// How the driver paces arrivals against the real orchestrator.
///   kLockstep — deterministic: arrivals are admitted in groups of exactly
///               queue_threshold parked tasks, each group's scheduling
///               cycle settles fully before the next group starts.
///   kWindowed — throughput mode: arrivals stream with a bounded
///               outstanding window; cycle boundaries are real-time races
///               and two runs of the same seed may differ.
enum class PacingMode { kLockstep, kWindowed };

const char* pacing_mode_name(PacingMode mode);

/// One tenant class of the workload mix. Each tenant deploys one workflow
/// image (a single quantum task of the given benchmark circuit) at
/// campaign start; arrivals sample tenants by weight.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
  api::Priority priority = api::Priority::kStandard;
  circuit::BenchmarkFamily family = circuit::BenchmarkFamily::kGhz;
  int width = 4;
  int shots = 1024;
  /// Per-job MCDM preference; unset = the deployment default.
  std::optional<double> fidelity_weight;
  /// Relative deadline drawn uniformly in [min, max] seconds after the
  /// arrival instant; max == 0 means no deadline.
  double deadline_offset_min_seconds = 0.0;
  double deadline_offset_max_seconds = 0.0;
};

enum class ChurnAction { kQpuOffline, kQpuOnline, kRecalibrate };

const char* churn_action_name(ChurnAction action);

/// One scheduled fleet event on the virtual clock.
struct ChurnEvent {
  double at_seconds = 0.0;
  ChurnAction action = ChurnAction::kRecalibrate;
  std::string qpu;  ///< monitor name; empty for kRecalibrate (whole fleet)
};

struct CampaignProfile {
  std::string name = "campaign";
  std::uint64_t seed = 2025;
  double duration_hours = 1.0;
  /// Stop after this many arrivals (0 = run to the horizon only).
  std::uint64_t target_runs = 0;
  /// Minimum virtual time between streamed stats rows.
  double stats_interval_seconds = 3600.0;
  PacingMode pacing = PacingMode::kLockstep;

  ArrivalSpec arrivals;

  // Fleet / orchestrator knobs the profile exposes.
  std::size_t num_qpus = 4;
  std::size_t executor_threads = 1;
  int trajectory_width_limit = 0;
  /// Run-table retention bound — what keeps a million-run campaign's
  /// resident memory flat.
  std::size_t max_terminal_runs = 2048;

  core::SchedulerServiceConfig scheduler;
  core::AdmissionConfig admission;

  std::vector<TenantSpec> tenants;
  /// Sorted by at_seconds (the parser sorts).
  std::vector<ChurnEvent> churn;

  /// Per-class end-to-end latency SLO, indexed by api::Priority; 0 = no
  /// target for that class.
  std::array<double, api::kNumPriorities> slo_seconds{};

  /// SLO burn-rate alert rules (`alerts:` section), evaluated by the
  /// driver at each stats interval on the virtual clock — the alert
  /// timeline is part of the deterministic byte-identical contract. Each
  /// rule's priority class must have a non-zero slo_seconds target.
  ///
  /// YAML schema (all fields except `name`/`priority` optional):
  ///   alerts:
  ///     - name: interactive-burn
  ///       priority: interactive
  ///       attainment_target: 0.9   # error budget = 1 - target
  ///       fast_window_seconds: 600
  ///       slow_window_seconds: 3600
  ///       burn_threshold: 2.0      # fire at >= this budget-burn multiple
  ///       clear_threshold: 1.0     # resolve below this (hysteresis)
  ///       min_samples: 20          # fast-window floor before any verdict
  std::vector<obs::SloRule> alerts;
};

/// Parses and validates profile text. Every failure — yamlite parse
/// errors, unknown enums, out-of-range knobs, lockstep constraint
/// violations — returns INVALID_ARGUMENT with a message naming the field.
api::Result<CampaignProfile> parse_profile(const std::string& text);

/// Reads `path` and parses it; NOT_FOUND when the file cannot be read.
api::Result<CampaignProfile> load_profile_file(const std::string& path);

/// The orchestrator configuration a campaign runs with: the profile's
/// fleet/scheduler/admission knobs plus the campaign hard-codes — tracing
/// off (a million traces would defeat the bounded-memory contract),
/// metrics on, and a lockstep-safe linger.
core::QonductorConfig make_orchestrator_config(const CampaignProfile& profile);

}  // namespace qon::campaign
