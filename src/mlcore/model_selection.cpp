#include "mlcore/model_selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace qon::ml {

double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("r2_score: size mismatch or empty");
  }
  double mean = 0.0;
  for (double y : y_true) mean += y;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot <= 1e-300) return ss_res <= 1e-300 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_absolute_error(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("mean_absolute_error: size mismatch or empty");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) acc += std::abs(y_true[i] - y_pred[i]);
  return acc / static_cast<double>(y_true.size());
}

double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("rmse: size mismatch or empty");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    acc += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

CvResult k_fold_cross_validate(const RegressorFactory& factory, const Matrix& x,
                               const std::vector<double>& y, std::size_t folds,
                               std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("k_fold_cross_validate: folds must be >= 2");
  const std::size_t n = x.rows();
  if (n != y.size()) throw std::invalid_argument("k_fold_cross_validate: size mismatch");
  if (n < folds) throw std::invalid_argument("k_fold_cross_validate: fewer samples than folds");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.shuffle(order);

  CvResult result;
  {
    auto probe = factory();
    result.model_name = probe->name();
  }
  double mae_acc = 0.0;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t lo = f * n / folds;
    const std::size_t hi = (f + 1) * n / folds;

    const std::size_t n_test = hi - lo;
    const std::size_t n_train = n - n_test;
    Matrix train_x(n_train, x.cols());
    Matrix test_x(n_test, x.cols());
    std::vector<double> train_y(n_train);
    std::vector<double> test_y(n_test);
    std::size_t ti = 0;
    std::size_t si = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src = order[i];
      const bool in_test = i >= lo && i < hi;
      if (in_test) {
        for (std::size_t j = 0; j < x.cols(); ++j) test_x(si, j) = x(src, j);
        test_y[si++] = y[src];
      } else {
        for (std::size_t j = 0; j < x.cols(); ++j) train_x(ti, j) = x(src, j);
        train_y[ti++] = y[src];
      }
    }

    auto model = factory();
    model->fit(train_x, train_y);
    const auto pred = model->predict(test_x);
    result.fold_r2.push_back(r2_score(test_y, pred));
    mae_acc += mean_absolute_error(test_y, pred);
  }
  result.mean_r2 = std::accumulate(result.fold_r2.begin(), result.fold_r2.end(), 0.0) /
                   static_cast<double>(folds);
  result.mean_mae = mae_acc / static_cast<double>(folds);
  return result;
}

std::vector<CvResult> select_best_model(const std::vector<RegressorFactory>& factories,
                                        const Matrix& x, const std::vector<double>& y,
                                        std::size_t folds, std::uint64_t seed) {
  std::vector<CvResult> results;
  results.reserve(factories.size());
  for (const auto& factory : factories) {
    results.push_back(k_fold_cross_validate(factory, x, y, folds, seed));
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const CvResult& a, const CvResult& b) { return a.mean_r2 > b.mean_r2; });
  return results;
}

}  // namespace qon::ml
