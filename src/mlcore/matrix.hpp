#pragma once
// Dense row-major matrix of doubles with the small set of linear-algebra
// kernels the regression models need (products, transpose, Cholesky solve,
// QR least squares). Intentionally minimal: no expression templates, no
// views — clarity over generality.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace qon::ml {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Constructs from nested initializer lists; all rows must agree in size.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }

  Matrix transpose() const;

  /// Matrix product; throws std::invalid_argument on shape mismatch.
  Matrix operator*(const Matrix& rhs) const;
  /// Matrix-vector product (vector length must equal cols()).
  std::vector<double> operator*(const std::vector<double>& v) const;

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);

  /// Scales every element.
  Matrix scaled(double factor) const;

  /// Returns row r as a vector.
  std::vector<double> row(std::size_t r) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky (A = L Lᵀ).
/// Throws std::runtime_error if A is not SPD (within tolerance).
std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b);

/// Least-squares solution of min ||A x - b||₂ via Householder QR with column
/// checks; works for rows >= cols. Throws on rank deficiency.
std::vector<double> qr_least_squares(const Matrix& a, const std::vector<double>& b);

/// Convenience: solves the ridge-regularized normal equations
/// (AᵀA + lambda I) x = Aᵀ b via Cholesky. lambda == 0 gives OLS.
std::vector<double> ridge_normal_equations(const Matrix& a, const std::vector<double>& b,
                                           double lambda);

}  // namespace qon::ml
