#include "mlcore/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Matrix::operator*: vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double factor) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= factor;
  return out;
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

std::vector<double> cholesky_solve(const Matrix& a, const std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("cholesky_solve: matrix not square");
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: rhs size mismatch");

  // Lower-triangular factor, in place over a copy.
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) throw std::runtime_error("cholesky_solve: matrix not positive definite");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Backward solve Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

std::vector<double> qr_least_squares(const Matrix& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) throw std::invalid_argument("qr_least_squares: underdetermined system");
  if (b.size() != m) throw std::invalid_argument("qr_least_squares: rhs size mismatch");

  Matrix r = a;
  std::vector<double> rhs = b;

  // Householder QR applied to [A | b].
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) throw std::runtime_error("qr_least_squares: rank-deficient matrix");
    if (r(k, k) > 0.0) norm = -norm;

    std::vector<double> v(m - k);
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    v[0] -= norm;
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 < 1e-300) continue;

    // Apply H = I - 2 v vᵀ / (vᵀv) to remaining columns and rhs.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double coef = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= coef * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double coef = 2.0 * dot / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= coef * v[i - k];
  }

  // Back substitution on the upper-triangular n x n block.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) < 1e-12) throw std::runtime_error("qr_least_squares: singular R");
    x[ii] = acc / r(ii, ii);
  }
  return x;
}

std::vector<double> ridge_normal_equations(const Matrix& a, const std::vector<double>& b,
                                           double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("ridge_normal_equations: negative lambda");
  const Matrix at = a.transpose();
  Matrix gram = at * a;
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  return cholesky_solve(gram, at * b);
}

}  // namespace qon::ml
