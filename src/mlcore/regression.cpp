#include "mlcore/regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::ml {

void StandardScaler::fit(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n == 0) throw std::invalid_argument("StandardScaler::fit: empty matrix");
  means_.assign(d, 0.0);
  stds_.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < n; ++i) m += x(i, j);
    m /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) var += (x(i, j) - m) * (x(i, j) - m);
    var /= static_cast<double>(n);
    means_[j] = m;
    stds_[j] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler::transform before fit");
  if (x.cols() != means_.size()) throw std::invalid_argument("StandardScaler: column mismatch");
  Matrix out = x;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out(i, j) = (x(i, j) - means_[j]) / stds_[j];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

namespace {

// Recursively enumerates monomial exponent vectors of total degree <= degree.
void enumerate_monomials(std::size_t n_features, int degree, std::vector<int>& current,
                         std::size_t start, int remaining,
                         std::vector<std::vector<int>>& out) {
  out.push_back(current);
  if (remaining == 0) return;
  for (std::size_t j = start; j < n_features; ++j) {
    ++current[j];
    enumerate_monomials(n_features, degree, current, j, remaining - 1, out);
    --current[j];
  }
}

std::vector<std::vector<int>> monomial_exponents(std::size_t n_features, int degree) {
  std::vector<std::vector<int>> exponents;
  std::vector<int> current(n_features, 0);
  enumerate_monomials(n_features, degree, current, 0, degree, exponents);
  return exponents;
}

}  // namespace

std::size_t polynomial_feature_count(std::size_t n_features, int degree) {
  // C(n_features + degree, degree)
  std::size_t count = 1;
  for (int i = 1; i <= degree; ++i) {
    count = count * (n_features + static_cast<std::size_t>(i)) / static_cast<std::size_t>(i);
  }
  return count;
}

Matrix polynomial_features(const Matrix& x, int degree) {
  if (degree < 0) throw std::invalid_argument("polynomial_features: negative degree");
  const auto exponents = monomial_exponents(x.cols(), degree);
  Matrix out(x.rows(), exponents.size(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t t = 0; t < exponents.size(); ++t) {
      double v = 1.0;
      for (std::size_t j = 0; j < x.cols(); ++j) {
        for (int e = 0; e < exponents[t][j]; ++e) v *= x(i, j);
      }
      out(i, t) = v;
    }
  }
  return out;
}

double Regressor::predict_one(const std::vector<double>& features) const {
  Matrix x(1, features.size());
  for (std::size_t j = 0; j < features.size(); ++j) x(0, j) = features[j];
  return predict(x)[0];
}

void LinearRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("LinearRegression::fit: size mismatch");
  // Augment with a bias column.
  Matrix aug(x.rows(), x.cols() + 1, 1.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) aug(i, j + 1) = x(i, j);
  }
  std::vector<double> beta;
  try {
    beta = qr_least_squares(aug, y);
  } catch (const std::runtime_error&) {
    // Rank-deficient design matrix (collinear or near-zero columns): fall
    // back to a minimally regularized solution.
    beta = ridge_normal_equations(aug, y, 1e-8);
  }
  intercept_ = beta[0];
  coef_.assign(beta.begin() + 1, beta.end());
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  if (coef_.empty() && x.cols() != 0) throw std::logic_error("LinearRegression: predict before fit");
  if (x.cols() != coef_.size()) throw std::invalid_argument("LinearRegression: column mismatch");
  std::vector<double> out(x.rows(), intercept_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) out[i] += coef_[j] * x(i, j);
  }
  return out;
}

RidgeRegression::RidgeRegression(double lambda) : lambda_(lambda) {
  if (lambda < 0.0) throw std::invalid_argument("RidgeRegression: negative lambda");
}

void RidgeRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("RidgeRegression::fit: size mismatch");
  Matrix aug(x.rows(), x.cols() + 1, 1.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) aug(i, j + 1) = x(i, j);
  }
  coef_ = ridge_normal_equations(aug, y, lambda_);
}

std::vector<double> RidgeRegression::predict(const Matrix& x) const {
  if (coef_.empty()) throw std::logic_error("RidgeRegression: predict before fit");
  if (x.cols() + 1 != coef_.size()) throw std::invalid_argument("RidgeRegression: column mismatch");
  std::vector<double> out(x.rows(), coef_[0]);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) out[i] += coef_[j + 1] * x(i, j);
  }
  return out;
}

PolynomialRegression::PolynomialRegression(int degree, double lambda)
    : degree_(degree), ridge_(lambda) {
  if (degree < 1) throw std::invalid_argument("PolynomialRegression: degree must be >= 1");
}

void PolynomialRegression::fit(const Matrix& x, const std::vector<double>& y) {
  const Matrix scaled = scaler_.fit_transform(x);
  ridge_.fit(polynomial_features(scaled, degree_), y);
}

std::vector<double> PolynomialRegression::predict(const Matrix& x) const {
  const Matrix scaled = scaler_.transform(x);
  return ridge_.predict(polynomial_features(scaled, degree_));
}

std::string PolynomialRegression::name() const {
  return "polynomial(d=" + std::to_string(degree_) + ")";
}

KnnRegression::KnnRegression(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("KnnRegression: k must be >= 1");
}

void KnnRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("KnnRegression::fit: size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("KnnRegression::fit: empty training set");
  train_x_ = scaler_.fit_transform(x);
  train_y_ = y;
}

std::vector<double> KnnRegression::predict(const Matrix& x) const {
  if (train_y_.empty()) throw std::logic_error("KnnRegression: predict before fit");
  const Matrix q = scaler_.transform(x);
  const std::size_t k = std::min(k_, train_y_.size());
  std::vector<double> out(q.rows(), 0.0);
  std::vector<std::pair<double, std::size_t>> dist(train_x_.rows());
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (std::size_t t = 0; t < train_x_.rows(); ++t) {
      double d2 = 0.0;
      for (std::size_t j = 0; j < q.cols(); ++j) {
        const double diff = q(i, j) - train_x_(t, j);
        d2 += diff * diff;
      }
      dist[t] = {d2, t};
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
    double acc = 0.0;
    for (std::size_t t = 0; t < k; ++t) acc += train_y_[dist[t].second];
    out[i] = acc / static_cast<double>(k);
  }
  return out;
}

std::string KnnRegression::name() const { return "knn(k=" + std::to_string(k_) + ")"; }

}  // namespace qon::ml
