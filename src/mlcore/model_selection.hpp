#pragma once
// Model selection utilities: regression metrics (R², MAE, RMSE) and K-fold
// cross-validation, mirroring the paper's §6 evaluation procedure ("train and
// evaluate multiple models through K-fold cross-validation, using the R²
// score as the primary evaluation metric").

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mlcore/matrix.hpp"
#include "mlcore/regression.hpp"

namespace qon::ml {

/// Coefficient of determination. Returns 1 for a perfect fit; can be
/// negative for models worse than predicting the mean.
double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Mean absolute error.
double mean_absolute_error(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Root mean squared error.
double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Result of one cross-validation run.
struct CvResult {
  std::string model_name;
  std::vector<double> fold_r2;   ///< one R² per fold
  double mean_r2 = 0.0;
  double mean_mae = 0.0;
};

/// Factory signature so each fold trains a fresh model instance.
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// K-fold cross validation with deterministic shuffling (`seed`).
/// Requires folds >= 2 and at least `folds` samples.
CvResult k_fold_cross_validate(const RegressorFactory& factory, const Matrix& x,
                               const std::vector<double>& y, std::size_t folds,
                               std::uint64_t seed = 42);

/// Runs CV for every factory and returns results sorted by mean R²
/// (descending), i.e. best model first.
std::vector<CvResult> select_best_model(const std::vector<RegressorFactory>& factories,
                                        const Matrix& x, const std::vector<double>& y,
                                        std::size_t folds, std::uint64_t seed = 42);

}  // namespace qon::ml
