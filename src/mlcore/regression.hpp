#pragma once
// Regression models for the resource estimator (§6 of the paper): the paper
// trains several models with K-fold cross-validation and selects Polynomial
// Regression (R² 0.998 runtime / 0.976 fidelity). We provide Linear, Ridge,
// Polynomial (degree-d feature expansion over ridge) and KNN regressors
// behind a common Regressor interface.

#include <memory>
#include <string>
#include <vector>

#include "mlcore/matrix.hpp"

namespace qon::ml {

/// Feature standardizer: z = (x - mean) / std per column. Columns with zero
/// variance pass through unscaled.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  Matrix fit_transform(const Matrix& x);

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

/// Expands raw features into all monomials of total degree <= `degree`
/// (including the bias term), e.g. degree 2 over (a, b) yields
/// [1, a, b, a², ab, b²]. Matches scikit-learn's PolynomialFeatures ordering
/// closely enough for our purposes.
Matrix polynomial_features(const Matrix& x, int degree);

/// Number of monomials of total degree <= degree over n_features variables.
std::size_t polynomial_feature_count(std::size_t n_features, int degree);

/// Abstract regression model: fit on (X, y), predict per-row.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const Matrix& x, const std::vector<double>& y) = 0;
  virtual std::vector<double> predict(const Matrix& x) const = 0;
  virtual std::string name() const = 0;

  /// Predicts a single sample.
  double predict_one(const std::vector<double>& features) const;
};

/// Ordinary least squares with intercept (QR-based).
class LinearRegression : public Regressor {
 public:
  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "linear"; }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// L2-regularized linear regression via normal equations.
class RidgeRegression : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1e-6);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "ridge"; }

  const std::vector<double>& coefficients() const { return coef_; }

 private:
  double lambda_;
  std::vector<double> coef_;  // includes bias as coef_[0]
};

/// Polynomial regression: standardize -> polynomial feature expansion ->
/// ridge. This is the model the paper selects.
class PolynomialRegression : public Regressor {
 public:
  explicit PolynomialRegression(int degree = 2, double lambda = 1e-6);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override;

  int degree() const { return degree_; }

 private:
  int degree_;
  StandardScaler scaler_;
  RidgeRegression ridge_;
};

/// K-nearest-neighbour regression (mean of k nearest by Euclidean distance
/// in standardized feature space). Included as one of the "multiple models"
/// the paper compares against.
class KnnRegression : public Regressor {
 public:
  explicit KnnRegression(std::size_t k = 5);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override;

 private:
  std::size_t k_;
  StandardScaler scaler_;
  Matrix train_x_;
  std::vector<double> train_y_;
};

}  // namespace qon::ml
