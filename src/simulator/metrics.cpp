#include "simulator/metrics.hpp"

#include <cmath>

namespace qon::sim {

double hellinger_fidelity(const std::map<std::uint64_t, double>& p,
                          const std::map<std::uint64_t, double>& q) {
  double bc = 0.0;  // Bhattacharyya coefficient
  for (const auto& [outcome, pp] : p) {
    const auto it = q.find(outcome);
    if (it == q.end()) continue;
    bc += std::sqrt(pp * it->second);
  }
  return bc * bc;
}

double hellinger_fidelity(const Counts& counts, const std::map<std::uint64_t, double>& ideal) {
  return hellinger_fidelity(counts_to_distribution(counts), ideal);
}

double total_variation_distance(const std::map<std::uint64_t, double>& p,
                                const std::map<std::uint64_t, double>& q) {
  double acc = 0.0;
  for (const auto& [outcome, pp] : p) {
    const auto it = q.find(outcome);
    acc += std::abs(pp - (it == q.end() ? 0.0 : it->second));
  }
  for (const auto& [outcome, qq] : q) {
    if (p.find(outcome) == p.end()) acc += qq;
  }
  return 0.5 * acc;
}

}  // namespace qon::sim
