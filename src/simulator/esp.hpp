#pragma once
// Analytic fidelity model: Estimated Success Probability (ESP), the product
// of per-gate success probabilities, readout success and idle-decoherence
// survival. Two uses:
//
//  * esp_fidelity(..., HiddenNoise::none()) is the classic *numerical*
//    estimator baseline of Fig. 7b/c ("traversing the circuit DAG and
//    multiplying the noise errors").
//  * esp_fidelity(..., hidden) with a non-trivial HiddenNoise is the
//    ground-truth executor for circuits too wide to trajectory-simulate:
//    the same analytic form evaluated on the *true* (perturbed) rates,
//    plus sampling (shot) noise.

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qpu/backend.hpp"
#include "simulator/noise.hpp"
#include "transpiler/scheduling.hpp"

namespace qon::sim {

/// Tunables of the analytic model.
struct EspOptions {
  double crosstalk_factor = 1.0;          ///< 2q error inflation (1.0 = none)
  double delay_dephasing_residual = 1.0;  ///< DD suppression on kDelay gates
};

/// Product-form success probability of a *physical* circuit on `backend`.
/// `hidden` perturbs each published rate into the true rate (pass
/// HiddenNoise::none() for the estimator-visible value).
double esp_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                    const HiddenNoise& hidden, const EspOptions& options = {});

/// Back-compat overload taking only a crosstalk factor.
double esp_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                    const HiddenNoise& hidden, double crosstalk_factor);

/// Ground-truth fidelity for large circuits: true-rate ESP plus shot noise
/// (standard error ~ sqrt(f(1-f)/shots)), clamped to [0, 1].
double ground_truth_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                             const HiddenNoise& hidden, int shots, Rng& rng,
                             double crosstalk_factor = 1.08);

}  // namespace qon::sim
