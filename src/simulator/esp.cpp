#include "simulator/esp.hpp"

#include <algorithm>
#include <cmath>

namespace qon::sim {

using circuit::GateKind;

namespace {

std::uint64_t tag_1q(int q) { return 0x1000 + static_cast<std::uint64_t>(q); }
std::uint64_t tag_2q(int a, int b) {
  if (a > b) std::swap(a, b);
  return 0x2000 + static_cast<std::uint64_t>(a) * 1000 + static_cast<std::uint64_t>(b);
}
std::uint64_t tag_readout(int q) { return 0x3000 + static_cast<std::uint64_t>(q); }

}  // namespace

double esp_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                    const HiddenNoise& hidden, const EspOptions& options) {
  const double crosstalk_factor = options.crosstalk_factor;
  const auto& cal = backend.calibration();
  const std::string& name = backend.name();
  double esp = 1.0;
  for (const auto& g : physical.gates()) {
    switch (g.kind) {
      case GateKind::kBarrier:
      case GateKind::kRZ:
      case GateKind::kI:
        break;
      case GateKind::kDelay: {
        if (g.param > 0.0) {
          const auto& qc = cal.qubits[static_cast<std::size_t>(g.qubit(0))];
          esp *= std::exp(-g.param / qc.t1) *
                 std::exp(-g.param * options.delay_dephasing_residual / (2.0 * qc.t2));
        }
        break;
      }
      case GateKind::kMeasure: {
        const int q = g.qubit(0);
        double err = cal.qubits[static_cast<std::size_t>(q)].readout_error *
                     hidden.factor(name, cal.cycle, tag_readout(q));
        esp *= 1.0 - std::min(err, 0.5);
        break;
      }
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kSwap:
      case GateKind::kRZZ: {
        double err = cal.edge(g.qubit(0), g.qubit(1)).gate_error_2q *
                     hidden.factor(name, cal.cycle, tag_2q(g.qubit(0), g.qubit(1))) *
                     crosstalk_factor;
        esp *= 1.0 - std::min(err, 0.75);
        break;
      }
      default: {
        const int q = g.qubit(0);
        double err = cal.qubits[static_cast<std::size_t>(q)].gate_error_1q *
                     hidden.factor(name, cal.cycle, tag_1q(q));
        esp *= 1.0 - std::min(err, 0.75);
        break;
      }
    }
  }
  // Idle decoherence survival per active qubit.
  const auto schedule = transpiler::asap_schedule(physical, backend);
  for (std::size_t q = 0; q < schedule.qubit_idle.size(); ++q) {
    if (!schedule.qubit_active[q]) continue;
    const double idle = schedule.qubit_idle[q];
    if (idle <= 0.0) continue;
    const auto& qc = cal.qubits[q];
    // Survival of both relaxation and dephasing during idle windows.
    esp *= std::exp(-idle / qc.t1) * std::exp(-idle / (2.0 * qc.t2));
  }
  return std::clamp(esp, 0.0, 1.0);
}

double esp_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                    const HiddenNoise& hidden, double crosstalk_factor) {
  EspOptions options;
  options.crosstalk_factor = crosstalk_factor;
  return esp_fidelity(physical, backend, hidden, options);
}

double ground_truth_fidelity(const circuit::Circuit& physical, const qpu::Backend& backend,
                             const HiddenNoise& hidden, int shots, Rng& rng,
                             double crosstalk_factor) {
  const double f = esp_fidelity(physical, backend, hidden, crosstalk_factor);
  const double se = std::sqrt(std::max(f * (1.0 - f), 1e-6) / std::max(shots, 1));
  return std::clamp(f + rng.normal(0.0, se), 0.0, 1.0);
}

}  // namespace qon::sim
