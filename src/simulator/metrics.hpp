#pragma once
// Distribution-level quality metrics: Hellinger fidelity (the paper's
// execution-quality metric, §2.1) and total variation distance.

#include <cstdint>
#include <map>

#include "simulator/statevector.hpp"

namespace qon::sim {

/// Hellinger fidelity between two distributions over packed outcomes:
/// ( sum_i sqrt(p_i * q_i) )^2, in [0, 1]; 1 means identical distributions.
/// Matches qiskit.quantum_info.hellinger_fidelity.
double hellinger_fidelity(const std::map<std::uint64_t, double>& p,
                          const std::map<std::uint64_t, double>& q);

/// Hellinger fidelity of measured counts vs an ideal distribution.
double hellinger_fidelity(const Counts& counts, const std::map<std::uint64_t, double>& ideal);

/// Total variation distance: 0.5 * sum |p_i - q_i|, in [0, 1].
double total_variation_distance(const std::map<std::uint64_t, double>& p,
                                const std::map<std::uint64_t, double>& q);

}  // namespace qon::sim
