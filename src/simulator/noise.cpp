#include "simulator/noise.hpp"

#include "transpiler/scheduling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

PauliErrorRates idle_pauli_rates(double idle_seconds, double t1, double t2) {
  if (idle_seconds <= 0.0) return {};
  const double relax = 1.0 - std::exp(-idle_seconds / t1);
  const double dephase = 1.0 - std::exp(-idle_seconds / t2);
  PauliErrorRates rates;
  rates.p_x = relax / 4.0;
  rates.p_y = relax / 4.0;
  rates.p_z = std::max(0.0, dephase / 2.0 - relax / 4.0);
  return rates;
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

HiddenNoise::HiddenNoise(std::uint64_t seed, double sigma) : seed_(seed), sigma_(sigma) {
  if (sigma < 0.0) throw std::invalid_argument("HiddenNoise: negative sigma");
}

HiddenNoise HiddenNoise::none() { return HiddenNoise(0, 0.0); }

double HiddenNoise::factor(const std::string& backend_name, std::uint64_t cycle,
                           std::uint64_t tag) const {
  if (sigma_ == 0.0) return 1.0;
  std::uint64_t h = mix64(seed_ ^ hash_string(backend_name));
  h = mix64(h ^ (cycle * 0x9e3779b97f4a7c15ULL));
  h = mix64(h ^ tag);
  // Two uniforms -> one standard normal (Box-Muller).
  const double u1 = std::max(1e-12, static_cast<double>(h >> 11) * 0x1.0p-53);
  const double u2 = static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(sigma_ * z);
}

namespace {

// Tags for HiddenNoise::factor: disambiguate the error source.
std::uint64_t tag_1q(int q) { return 0x1000 + static_cast<std::uint64_t>(q); }
std::uint64_t tag_2q(int a, int b) {
  if (a > b) std::swap(a, b);
  return 0x2000 + static_cast<std::uint64_t>(a) * 1000 + static_cast<std::uint64_t>(b);
}
std::uint64_t tag_readout(int q) { return 0x3000 + static_cast<std::uint64_t>(q); }

// Applies a uniformly chosen non-identity Pauli to a compact qubit.
void apply_random_pauli(StateVector& sv, int q, Rng& rng) {
  static const std::array<GateKind, 3> kPaulis = {GateKind::kX, GateKind::kY, GateKind::kZ};
  const auto kind = kPaulis[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  sv.apply_unitary_1q(q, gate_unitary_1q(kind, 0.0));
}

// Applies idle Pauli noise with the given rates.
void apply_idle_noise(StateVector& sv, int q, const PauliErrorRates& rates, Rng& rng) {
  const double u = rng.uniform();
  if (u < rates.p_x) {
    sv.apply_unitary_1q(q, gate_unitary_1q(GateKind::kX, 0.0));
  } else if (u < rates.p_x + rates.p_y) {
    sv.apply_unitary_1q(q, gate_unitary_1q(GateKind::kY, 0.0));
  } else if (u < rates.total()) {
    sv.apply_unitary_1q(q, gate_unitary_1q(GateKind::kZ, 0.0));
  }
}

}  // namespace

Counts run_noisy(const Circuit& physical, const qpu::Backend& backend, int shots, Rng& rng,
                 const HiddenNoise& hidden, const TrajectoryOptions& options) {
  if (shots <= 0) throw std::invalid_argument("run_noisy: shots must be > 0");
  const auto& cal = backend.calibration();

  // Compact the circuit onto its active qubits to keep the state vector small.
  std::vector<int> phys_of_compact;
  std::vector<int> compact_of_phys(static_cast<std::size_t>(physical.num_qubits()), -1);
  for (const auto& g : physical.gates()) {
    for (int i = 0; i < g.arity(); ++i) {
      const int p = g.qubit(i);
      if (compact_of_phys[static_cast<std::size_t>(p)] < 0) {
        compact_of_phys[static_cast<std::size_t>(p)] = static_cast<int>(phys_of_compact.size());
        phys_of_compact.push_back(p);
      }
    }
  }
  const int n_active = static_cast<int>(phys_of_compact.size());
  if (n_active == 0) throw std::invalid_argument("run_noisy: circuit has no gates");
  if (n_active > 22) {
    throw std::invalid_argument("run_noisy: too many active qubits for trajectory simulation (" +
                                std::to_string(n_active) + ")");
  }

  Circuit compact(n_active, physical.name());
  for (const auto& g : physical.gates()) {
    Gate mapped = g;
    for (int i = 0; i < g.arity(); ++i) {
      mapped.qubits[static_cast<std::size_t>(i)] =
          compact_of_phys[static_cast<std::size_t>(g.qubit(i))];
    }
    compact.append(mapped);
  }

  // Measured register description (compact qubit, clbit, true flip prob).
  struct MeasureSpec {
    int compact_q;
    int clbit;
    double flip_prob;
  };
  std::vector<MeasureSpec> meas;
  for (const auto& g : physical.gates()) {
    if (g.kind != GateKind::kMeasure) continue;
    const int p = g.qubit(0);
    double flip = cal.qubits[static_cast<std::size_t>(p)].readout_error *
                  hidden.factor(backend.name(), cal.cycle, tag_readout(p));
    flip = std::clamp(flip, 0.0, 0.5);
    meas.push_back({compact_of_phys[static_cast<std::size_t>(p)], g.qubits[1],
                    options.readout_noise ? flip : 0.0});
  }
  if (meas.empty()) throw std::invalid_argument("run_noisy: circuit has no measurements");

  const int n_traj = std::max(1, std::min(options.trajectories, shots));
  Counts counts;
  for (int t = 0; t < n_traj; ++t) {
    StateVector sv(n_active);
    std::vector<double> ready(static_cast<std::size_t>(n_active), 0.0);
    for (std::size_t gi = 0; gi < compact.gates().size(); ++gi) {
      const Gate& g = compact.gates()[gi];
      const Gate& pg = physical.gates()[gi];
      if (g.kind == GateKind::kBarrier) {
        const double sync = *std::max_element(ready.begin(), ready.end());
        std::fill(ready.begin(), ready.end(), sync);
        continue;
      }
      const double dur = transpiler::gate_duration(pg, backend);
      double start = 0.0;
      for (int i = 0; i < g.arity(); ++i) {
        start = std::max(start, ready[static_cast<std::size_t>(g.qubit(i))]);
      }
      // Idle decoherence on each operand between its last activity and now.
      if (options.idle_noise) {
        for (int i = 0; i < g.arity(); ++i) {
          const int cq = g.qubit(i);
          const int p = pg.qubit(i);
          const double gap = start - ready[static_cast<std::size_t>(cq)];
          if (gap > 0.0) {
            const auto& qc = cal.qubits[static_cast<std::size_t>(p)];
            apply_idle_noise(sv, cq, idle_pauli_rates(gap, qc.t1, qc.t2), rng);
          }
        }
      }
      // Explicit delays are idle time; dephasing may be DD-suppressed.
      if (g.kind == GateKind::kDelay && options.idle_noise && g.param > 0.0) {
        const auto& qc = cal.qubits[static_cast<std::size_t>(pg.qubit(0))];
        auto rates = idle_pauli_rates(g.param, qc.t1, qc.t2);
        rates.p_z *= options.delay_dephasing_residual;
        apply_idle_noise(sv, g.qubit(0), rates, rng);
      }
      // The gate itself (unitaries only; measure handled at sampling).
      if (g.kind != GateKind::kMeasure && g.kind != GateKind::kDelay && g.kind != GateKind::kI) {
        sv.apply(g);
      }
      // Stochastic gate error.
      if (options.gate_noise) {
        if (circuit::is_two_qubit(g.kind)) {
          double err = cal.edge(pg.qubit(0), pg.qubit(1)).gate_error_2q *
                       hidden.factor(backend.name(), cal.cycle, tag_2q(pg.qubit(0), pg.qubit(1))) *
                       options.crosstalk_factor;
          err = std::min(err, 0.75);
          if (rng.bernoulli(err)) {
            // Uniform non-identity two-qubit Pauli: at least one leg non-I.
            const int combo = static_cast<int>(rng.uniform_int(1, 15));
            const int leg0 = combo & 3;
            const int leg1 = (combo >> 2) & 3;
            static const std::array<GateKind, 4> kP = {GateKind::kI, GateKind::kX, GateKind::kY,
                                                       GateKind::kZ};
            if (leg0 != 0) sv.apply_unitary_1q(g.qubit(0), gate_unitary_1q(kP[static_cast<std::size_t>(leg0)], 0.0));
            if (leg1 != 0) sv.apply_unitary_1q(g.qubit(1), gate_unitary_1q(kP[static_cast<std::size_t>(leg1)], 0.0));
          }
        } else if (g.kind != GateKind::kMeasure && g.kind != GateKind::kRZ &&
                   g.kind != GateKind::kDelay && g.kind != GateKind::kBarrier) {
          const int p = pg.qubit(0);
          double err = cal.qubits[static_cast<std::size_t>(p)].gate_error_1q *
                       hidden.factor(backend.name(), cal.cycle, tag_1q(p));
          err = std::min(err, 0.75);
          if (rng.bernoulli(err)) apply_random_pauli(sv, g.qubit(0), rng);
        }
      }
      const double finish = start + dur;
      for (int i = 0; i < g.arity(); ++i) {
        ready[static_cast<std::size_t>(g.qubit(i))] = finish;
      }
    }

    // Sample this trajectory's share of shots with readout flips.
    const int share = shots / n_traj + (t < shots % n_traj ? 1 : 0);
    if (share == 0) continue;
    const Counts raw = sv.sample_counts(compact, share, rng);
    for (const auto& [outcome, n] : raw) {
      for (std::uint64_t s = 0; s < n; ++s) {
        std::uint64_t flipped = outcome;
        for (const auto& m : meas) {
          if (m.flip_prob > 0.0 && rng.bernoulli(m.flip_prob)) {
            flipped ^= (1ULL << m.clbit);
          }
        }
        ++counts[flipped];
      }
    }
  }
  return counts;
}

Counts run_ideal(const Circuit& physical, int shots, Rng& rng) {
  // Compact exactly as run_noisy does, then sample without noise.
  std::vector<int> compact_of_phys(static_cast<std::size_t>(physical.num_qubits()), -1);
  int n_active = 0;
  for (const auto& g : physical.gates()) {
    for (int i = 0; i < g.arity(); ++i) {
      const int p = g.qubit(i);
      if (compact_of_phys[static_cast<std::size_t>(p)] < 0) {
        compact_of_phys[static_cast<std::size_t>(p)] = n_active++;
      }
    }
  }
  if (n_active == 0 || n_active > 24) {
    throw std::invalid_argument("run_ideal: unsupported active width");
  }
  Circuit compact(n_active, physical.name());
  for (const auto& g : physical.gates()) {
    Gate mapped = g;
    for (int i = 0; i < g.arity(); ++i) {
      mapped.qubits[static_cast<std::size_t>(i)] =
          compact_of_phys[static_cast<std::size_t>(g.qubit(i))];
    }
    compact.append(mapped);
  }
  StateVector sv(n_active);
  sv.run(compact);
  return sv.sample_counts(compact, shots, rng);
}

}  // namespace qon::sim
