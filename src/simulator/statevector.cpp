#include "simulator/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace qon::sim {

using circuit::GateKind;

std::string bitstring(std::uint64_t outcome, int width) {
  std::string s(static_cast<std::size_t>(width), '0');
  for (int b = 0; b < width; ++b) {
    if (outcome & (1ULL << b)) s[static_cast<std::size_t>(width - 1 - b)] = '1';
  }
  return s;
}

std::map<std::uint64_t, double> counts_to_distribution(const Counts& counts) {
  std::uint64_t total = 0;
  for (const auto& [k, v] : counts) {
    (void)k;
    total += v;
  }
  std::map<std::uint64_t, double> dist;
  if (total == 0) return dist;
  for (const auto& [k, v] : counts) {
    dist[k] = static_cast<double>(v) / static_cast<double>(total);
  }
  return dist;
}

std::array<cplx, 4> gate_unitary_1q(circuit::GateKind kind, double param) {
  const cplx i(0.0, 1.0);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::kI:
      return {1, 0, 0, 1};
    case GateKind::kX:
      return {0, 1, 1, 0};
    case GateKind::kY:
      return {0, -i, i, 0};
    case GateKind::kZ:
      return {1, 0, 0, -1};
    case GateKind::kH:
      return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
    case GateKind::kS:
      return {1, 0, 0, i};
    case GateKind::kSdg:
      return {1, 0, 0, -i};
    case GateKind::kT:
      return {1, 0, 0, std::exp(i * (M_PI / 4.0))};
    case GateKind::kTdg:
      return {1, 0, 0, std::exp(-i * (M_PI / 4.0))};
    case GateKind::kSX:
      return {0.5 * cplx(1, 1), 0.5 * cplx(1, -1), 0.5 * cplx(1, -1), 0.5 * cplx(1, 1)};
    case GateKind::kRX: {
      const double c = std::cos(param / 2.0);
      const double s = std::sin(param / 2.0);
      return {c, -i * s, -i * s, c};
    }
    case GateKind::kRY: {
      const double c = std::cos(param / 2.0);
      const double s = std::sin(param / 2.0);
      return {c, -s, s, c};
    }
    case GateKind::kRZ:
      return {std::exp(-i * (param / 2.0)), 0, 0, std::exp(i * (param / 2.0))};
    default:
      throw std::invalid_argument("gate_unitary_1q: not a one-qubit unitary");
  }
}

std::array<cplx, 16> gate_unitary_2q(circuit::GateKind kind, double param) {
  const cplx i(0.0, 1.0);
  // Basis order |q1 q0>: index = 2*q1 + q0, where q0 is the first operand.
  switch (kind) {
    case GateKind::kCX: {
      // First operand (q0 axis... operand 0) is the CONTROL.
      // Control = operand 0 -> bit 0 of the basis index; target = bit 1.
      // States: |00>,|01>,|10>,|11> as (q1 q0). Control set = q0 = 1.
      return {1, 0, 0, 0,
              0, 0, 0, 1,
              0, 0, 1, 0,
              0, 1, 0, 0};
    }
    case GateKind::kCZ:
      return {1, 0, 0, 0,
              0, 1, 0, 0,
              0, 0, 1, 0,
              0, 0, 0, -1};
    case GateKind::kSwap:
      return {1, 0, 0, 0,
              0, 0, 1, 0,
              0, 1, 0, 0,
              0, 0, 0, 1};
    case GateKind::kRZZ: {
      const cplx em = std::exp(-i * (param / 2.0));
      const cplx ep = std::exp(i * (param / 2.0));
      return {em, 0, 0, 0,
              0, ep, 0, 0,
              0, 0, ep, 0,
              0, 0, 0, em};
    }
    default:
      throw std::invalid_argument("gate_unitary_2q: not a two-qubit unitary");
  }
}

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > 28) {
    throw std::invalid_argument("StateVector: supports 1..28 qubits");
  }
  amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
  amps_[0] = cplx(1.0, 0.0);
}

void StateVector::apply_unitary_1q(int q, const std::array<cplx, 4>& u) {
  if (q < 0 || q >= num_qubits_) throw std::out_of_range("apply_unitary_1q: bad qubit");
  const std::size_t mask = std::size_t{1} << q;
  const std::size_t dim = amps_.size();
  auto body = [this, mask, &u](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i & mask) continue;
      const std::size_t j = i | mask;
      const cplx a0 = amps_[i];
      const cplx a1 = amps_[j];
      amps_[i] = u[0] * a0 + u[1] * a1;
      amps_[j] = u[2] * a0 + u[3] * a1;
    }
  };
  parallel_for_blocked(0, dim, body, nullptr, 1 << 14);
}

void StateVector::apply_unitary_2q(int q0, int q1, const std::array<cplx, 16>& u) {
  if (q0 < 0 || q1 < 0 || q0 >= num_qubits_ || q1 >= num_qubits_ || q0 == q1) {
    throw std::out_of_range("apply_unitary_2q: bad qubits");
  }
  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  const std::size_t dim = amps_.size();
  auto body = [this, m0, m1, &u](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (i & (m0 | m1)) continue;
      const std::size_t i00 = i;
      const std::size_t i01 = i | m0;  // q0 = 1
      const std::size_t i10 = i | m1;  // q1 = 1
      const std::size_t i11 = i | m0 | m1;
      const cplx a00 = amps_[i00];
      const cplx a01 = amps_[i01];
      const cplx a10 = amps_[i10];
      const cplx a11 = amps_[i11];
      // Basis order within the 4-block: (q1 q0) = 00, 01, 10, 11.
      amps_[i00] = u[0] * a00 + u[1] * a01 + u[2] * a10 + u[3] * a11;
      amps_[i01] = u[4] * a00 + u[5] * a01 + u[6] * a10 + u[7] * a11;
      amps_[i10] = u[8] * a00 + u[9] * a01 + u[10] * a10 + u[11] * a11;
      amps_[i11] = u[12] * a00 + u[13] * a01 + u[14] * a10 + u[15] * a11;
    }
  };
  parallel_for_blocked(0, dim, body, nullptr, 1 << 14);
}

void StateVector::apply(const circuit::Gate& gate) {
  switch (gate.kind) {
    case GateKind::kMeasure:
    case GateKind::kBarrier:
    case GateKind::kDelay:
    case GateKind::kI:
      return;
    default:
      break;
  }
  if (circuit::is_two_qubit(gate.kind)) {
    apply_unitary_2q(gate.qubit(0), gate.qubit(1), gate_unitary_2q(gate.kind, gate.param));
  } else {
    apply_unitary_1q(gate.qubit(0), gate_unitary_1q(gate.kind, gate.param));
  }
}

void StateVector::run(const circuit::Circuit& circ) {
  if (circ.num_qubits() != num_qubits_) throw std::invalid_argument("StateVector::run: width");
  for (const auto& g : circ.gates()) apply(g);
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

std::map<std::uint64_t, double> StateVector::measured_distribution(
    const circuit::Circuit& circ) const {
  // Gather qubit -> clbit pairs from measure gates.
  std::vector<std::pair<int, int>> meas;  // (qubit, clbit)
  for (const auto& g : circ.gates()) {
    if (g.kind == GateKind::kMeasure) meas.emplace_back(g.qubit(0), g.qubits[1]);
  }
  if (meas.empty()) throw std::invalid_argument("measured_distribution: no measurements");

  std::map<std::uint64_t, double> dist;
  const auto probs = probabilities();
  for (std::size_t state = 0; state < probs.size(); ++state) {
    if (probs[state] < 1e-18) continue;
    std::uint64_t outcome = 0;
    for (const auto& [q, c] : meas) {
      if (state & (std::size_t{1} << q)) outcome |= (1ULL << c);
    }
    dist[outcome] += probs[state];
  }
  return dist;
}

Counts StateVector::sample_counts(const circuit::Circuit& circ, int shots, Rng& rng) const {
  if (shots <= 0) throw std::invalid_argument("sample_counts: shots must be > 0");
  const auto dist = measured_distribution(circ);
  // Build a CDF over the measured outcomes.
  std::vector<std::pair<double, std::uint64_t>> cdf;
  cdf.reserve(dist.size());
  double acc = 0.0;
  for (const auto& [outcome, p] : dist) {
    acc += p;
    cdf.emplace_back(acc, outcome);
  }
  Counts counts;
  for (int s = 0; s < shots; ++s) {
    const double u = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u,
                                     [](const auto& e, double v) { return e.first < v; });
    counts[it == cdf.end() ? cdf.back().second : it->second]++;
  }
  return counts;
}

double StateVector::norm() const {
  double acc = 0.0;
  for (const auto& a : amps_) acc += std::norm(a);
  return std::sqrt(acc);
}

std::map<std::uint64_t, double> ideal_distribution(const circuit::Circuit& circ) {
  StateVector sv(circ.num_qubits());
  sv.run(circ);
  return sv.measured_distribution(circ);
}

}  // namespace qon::sim
