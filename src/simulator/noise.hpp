#pragma once
// Noise modelling. Two layers:
//
//  1. NoiseModel — the *public* noise a backend advertises, derived from its
//     calibration snapshot (depolarizing gate errors, T1/T2 idle decay via
//     Pauli-twirling approximation, readout flips).
//  2. HiddenNoise — estimator-invisible perturbations (drift between
//     calibrations, crosstalk) that only ground-truth execution sees. This
//     gap is what gives estimators a non-zero error CDF (paper Fig. 7b/c).
//
// Trajectory simulation inserts stochastic Pauli errors per gate and samples
// measurement flips, averaging several trajectories into one Counts.

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qpu/backend.hpp"
#include "simulator/statevector.hpp"

namespace qon::sim {

/// Pauli-twirled error channel parameters for one gate application.
struct PauliErrorRates {
  double p_x = 0.0;
  double p_y = 0.0;
  double p_z = 0.0;
  double total() const { return p_x + p_y + p_z; }
};

/// Converts idle time under (T1, T2) decay into Pauli-twirled rates
/// (standard PTA: p_x = p_y = (1-e^{-t/T1})/4, p_z = (1-e^{-t/T2})/2 - p_x).
PauliErrorRates idle_pauli_rates(double idle_seconds, double t1, double t2);

/// Deterministic, estimator-invisible multiplicative perturbation of error
/// rates. factor(...) is a log-normal value fixed by (backend, cycle, tag),
/// so repeated executions inside one calibration cycle see consistent
/// "true" hardware while estimators only see the published calibration.
class HiddenNoise {
 public:
  explicit HiddenNoise(std::uint64_t seed = 0x5eed, double sigma = 0.25);

  /// Multiplier applied to a published error rate to get the true rate.
  double factor(const std::string& backend_name, std::uint64_t cycle, std::uint64_t tag) const;

  double sigma() const { return sigma_; }

  /// A HiddenNoise with sigma == 0 (true == published); used for ablations.
  static HiddenNoise none();

 private:
  std::uint64_t seed_;
  double sigma_;
};

/// Options for noisy trajectory execution.
struct TrajectoryOptions {
  int trajectories = 48;      ///< noise realizations averaged per execution
  bool readout_noise = true;
  bool gate_noise = true;
  bool idle_noise = true;
  double crosstalk_factor = 1.08;  ///< true 2q error inflation per gate (hidden)
  /// Fraction of dephasing (Z) noise surviving during explicit kDelay gates.
  /// Dynamical decoupling sets this < 1; plain delays keep 1.0. Relaxation
  /// (X/Y) noise is never suppressed.
  double delay_dephasing_residual = 1.0;
};

/// Executes a *physical* (transpiled) circuit on `backend` with noise drawn
/// from its calibration x hidden perturbation, returning sampled counts.
/// The circuit must fit the trajectory simulator (<= ~20 qubits of the
/// device actually used; inactive device qubits are ignored).
Counts run_noisy(const circuit::Circuit& physical, const qpu::Backend& backend, int shots,
                 Rng& rng, const HiddenNoise& hidden, const TrajectoryOptions& options = {});

/// Noiseless execution of the physical circuit (sampling only shot noise).
Counts run_ideal(const circuit::Circuit& physical, int shots, Rng& rng);

}  // namespace qon::sim
