#pragma once
// Dense state-vector simulator. Qubit 0 is the least-significant bit of the
// basis-state index. Supports every unitary GateKind; measurements are
// terminal and handled by sampling from the final distribution.
//
// Gate application is parallelized over amplitude blocks via the common
// thread pool (worksharing, OpenMP-style).

#include <complex>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qon::sim {

using cplx = std::complex<double>;

/// Measurement outcome histogram keyed by the packed classical register
/// (clbit 0 = least-significant bit).
using Counts = std::map<std::uint64_t, std::uint64_t>;

/// Renders a packed outcome as a bitstring, clbit 0 rightmost (Qiskit order).
std::string bitstring(std::uint64_t outcome, int width);

/// Normalizes counts into a probability map.
std::map<std::uint64_t, double> counts_to_distribution(const Counts& counts);

/// 2x2 unitary of a one-qubit gate (row-major). Throws for non-1q kinds.
std::array<cplx, 4> gate_unitary_1q(circuit::GateKind kind, double param);

/// 4x4 unitary of a two-qubit gate (row-major, basis |q1 q0> with qubit
/// order (first operand = index 0)). Throws for non-2q kinds.
std::array<cplx, 16> gate_unitary_2q(circuit::GateKind kind, double param);

/// Dense state vector over n qubits, initialized to |0...0>.
class StateVector {
 public:
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return amps_.size(); }
  const std::vector<cplx>& amplitudes() const { return amps_; }

  /// Applies a unitary gate. kMeasure/kBarrier/kDelay/kI are no-ops here
  /// (noise for delays is handled by the trajectory runner).
  void apply(const circuit::Gate& gate);

  /// Applies an explicit 2x2 unitary to qubit q.
  void apply_unitary_1q(int q, const std::array<cplx, 4>& u);

  /// Applies an explicit 4x4 unitary to (q0, q1); q0 is the low-order axis.
  void apply_unitary_2q(int q0, int q1, const std::array<cplx, 16>& u);

  /// Applies every unitary gate of `circ` in order.
  void run(const circuit::Circuit& circ);

  /// |amplitude|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Probability of each *measured* register outcome according to the
  /// circuit's measure gates (qubit -> clbit). Qubits never measured are
  /// traced out.
  std::map<std::uint64_t, double> measured_distribution(const circuit::Circuit& circ) const;

  /// Samples `shots` outcomes of the measured register.
  Counts sample_counts(const circuit::Circuit& circ, int shots, Rng& rng) const;

  /// L2 norm (should stay 1 within numerical tolerance).
  double norm() const;

 private:
  int num_qubits_;
  std::vector<cplx> amps_;
};

/// Convenience: exact (noiseless) measured distribution of a circuit.
std::map<std::uint64_t, double> ideal_distribution(const circuit::Circuit& circ);

}  // namespace qon::sim
