#include "cloudsim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace qon::cloudsim {

void EventQueue::schedule_at(double at, Callback fn) {
  if (at < now_) throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("EventQueue::schedule_at: empty callback");
  events_.push({at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_in(double delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument("EventQueue::schedule_in: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

std::size_t EventQueue::run_until(double horizon) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().time <= horizon) {
    // Copy out before pop so the callback can schedule more events.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn();
    ++processed;
  }
  if (now_ < horizon) now_ = horizon;
  return processed;
}

}  // namespace qon::cloudsim
