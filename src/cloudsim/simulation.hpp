#pragma once
// End-to-end cloud simulation (§8.2-8.3): a fleet of QPU workers, a
// classical node pool, the load generator, and a pluggable scheduling
// policy (Qonductor's hybrid scheduler vs the best-fidelity FCFS and
// least-busy baselines). Produces the records behind Figs. 2c, 6, 8 and 9.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloudsim/workload.hpp"
#include "estimator/models.hpp"
#include "qpu/fleet.hpp"
#include "sched/hybrid_scheduler.hpp"

namespace qon::cloudsim {

enum class SchedulingPolicy {
  kQonductor,         ///< batched NSGA-II + MCDM (triggers per §7)
  kBestFidelityFcfs,  ///< per-arrival, highest-fidelity QPU (paper baseline)
  kLeastBusy,         ///< per-arrival, shortest-queue QPU
};

const char* policy_name(SchedulingPolicy policy);

struct CloudSimConfig {
  WorkloadConfig workload;
  std::size_t num_qpus = 8;
  std::uint64_t seed = 42;
  /// Fleet quality band (see make_ibm_like_fleet). Narrower bands make the
  /// fidelity objective flatter, so the scheduler spreads load more evenly.
  double fleet_best_quality = 0.72;
  double fleet_worst_quality = 1.55;
  SchedulingPolicy policy = SchedulingPolicy::kQonductor;
  sched::SchedulerConfig scheduler;
  std::size_t queue_trigger = 100;
  double timer_trigger_seconds = 120.0;
  double calibration_interval_hours = 12.0;
  bool calibration_crossover = true;
  double hidden_sigma = 0.25;
  double crosstalk_factor = 1.08;
  double queue_sample_interval_seconds = 60.0;
  /// Optional trained estimators; the calibration-model fallback is used
  /// when null.
  const estimator::FidelityEstimator* fidelity_model = nullptr;
  const estimator::RuntimeEstimator* runtime_model = nullptr;
};

/// Per-application outcome.
struct AppRecord {
  std::uint64_t id = 0;
  double arrival = 0.0;
  int width = 0;
  int shots = 0;
  bool mitigated = false;
  int qpu = -1;
  std::string qpu_name;
  double scheduled_at = 0.0;
  double start = 0.0;
  double quantum_done = 0.0;
  double completion = 0.0;
  double est_fidelity = 0.0;
  double measured_fidelity = 0.0;
  double quantum_exec_seconds = 0.0;
  double classical_seconds = 0.0;

  double jct() const { return completion - arrival; }
  double waiting_seconds() const { return start - arrival; }
};

/// Per-scheduling-cycle trace (Qonductor policy only).
struct CycleRecord {
  double time = 0.0;
  std::size_t jobs_scheduled = 0;
  sched::ObjectivePoint chosen;
  double min_front_jct = 0.0;
  double max_front_jct = 0.0;
  double min_front_fidelity = 0.0;
  double max_front_fidelity = 0.0;
  double chosen_exec_seconds = 0.0;
  double min_front_exec_seconds = 0.0;
  double max_front_exec_seconds = 0.0;
  double preprocess_seconds = 0.0;
  double optimize_seconds = 0.0;
  double select_seconds = 0.0;
};

/// Periodic queue-state sample.
struct QueueSample {
  double time = 0.0;
  std::vector<std::size_t> qpu_queue_lengths;
  std::size_t scheduler_pending = 0;
};

struct SimulationResult {
  std::vector<AppRecord> apps;          ///< completed applications
  std::vector<CycleRecord> cycles;
  std::vector<QueueSample> queue_samples;
  std::vector<std::string> qpu_names;
  std::vector<double> qpu_busy_seconds; ///< total exec time per QPU (Fig. 8c)
  double horizon_seconds = 0.0;
  std::size_t generated_apps = 0;
  std::size_t unscheduled_apps = 0;     ///< filtered (no QPU fits)

  // Aggregates over completed apps.
  double mean_fidelity() const;
  double mean_jct() const;
  double mean_utilization() const;      ///< mean busy fraction over horizon
};

/// Runs the simulation to completion (all generated apps either complete or
/// are filtered; the event horizon extends past the arrival window until
/// queues drain, capped at 50x the workload duration).
SimulationResult run_cloud_simulation(const CloudSimConfig& config);

}  // namespace qon::cloudsim
