#include "cloudsim/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "cloudsim/qpu_worker.hpp"
#include "estimator/execution_model.hpp"
#include "estimator/features.hpp"
#include "sched/baselines.hpp"
#include "sched/triggers.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::cloudsim {

const char* policy_name(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kQonductor: return "qonductor";
    case SchedulingPolicy::kBestFidelityFcfs: return "fcfs-best-fidelity";
    case SchedulingPolicy::kLeastBusy: return "least-busy";
  }
  return "?";
}

double SimulationResult::mean_fidelity() const {
  if (apps.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& a : apps) acc += a.measured_fidelity;
  return acc / static_cast<double>(apps.size());
}

double SimulationResult::mean_jct() const {
  if (apps.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& a : apps) acc += a.jct();
  return acc / static_cast<double>(apps.size());
}

double SimulationResult::mean_utilization() const {
  if (qpu_busy_seconds.empty() || horizon_seconds <= 0.0) return 0.0;
  double acc = 0.0;
  for (double b : qpu_busy_seconds) acc += std::min(b / horizon_seconds, 1.0);
  return acc / static_cast<double>(qpu_busy_seconds.size());
}

namespace {

/// An application with everything precomputed that does not depend on the
/// (drifting) calibration: transpilation, mitigation signature and
/// per-backend execution times (gate durations do not drift).
struct PreparedApp {
  HybridApp app;
  transpiler::TranspileResult transpiled;
  mitigation::MitigationSignature signature;
  std::vector<double> exec_seconds;  ///< per backend, incl. multipliers
  AppRecord record;
  bool scheduled = false;
};

}  // namespace

SimulationResult run_cloud_simulation(const CloudSimConfig& config) {
  if (config.num_qpus == 0) throw std::invalid_argument("run_cloud_simulation: no QPUs");
  Rng rng(config.seed);
  const sim::HiddenNoise hidden(config.seed ^ 0xfeedULL, config.hidden_sigma);

  auto fleet = qpu::make_ibm_like_fleet(config.num_qpus, config.seed ^ 0xf1ee7ULL,
                                        config.fleet_best_quality, config.fleet_worst_quality);
  const auto templates = fleet.template_backends();
  const auto& tmpl = templates.front();

  // ---- generate + prepare the workload ------------------------------------
  const auto workload = generate_workload(config.workload);
  std::vector<PreparedApp> prepared;
  prepared.reserve(workload.size());
  std::size_t unscheduled = 0;
  for (const auto& app : workload) {
    if (app.logical.num_qubits() > tmpl.num_qubits()) {
      ++unscheduled;  // cannot fit any QPU: filtered at pre-processing
      continue;
    }
    PreparedApp p;
    p.app = app;
    p.transpiled = transpiler::transpile(app.logical, tmpl);
    p.signature = mitigation::compute_signature(
        app.spec, static_cast<std::size_t>(app.logical.num_qubits()),
        static_cast<std::size_t>(p.transpiled.circuit.depth()),
        p.transpiled.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(p.transpiled.circuit.num_clbits()),
        tmpl.calibration().mean_gate_error_2q(), app.accelerator);
    p.exec_seconds.reserve(fleet.backends.size());
    for (const auto& backend : fleet.backends) {
      const auto sched = transpiler::asap_schedule(p.transpiled.circuit, *backend);
      p.exec_seconds.push_back(transpiler::job_quantum_runtime(sched, app.shots, *backend) *
                               p.signature.quantum_runtime_multiplier);
    }
    p.record.id = app.id;
    p.record.arrival = app.arrival_time;
    p.record.width = app.logical.num_qubits();
    p.record.shots = app.shots;
    p.record.mitigated = !app.spec.stack.empty();
    p.record.classical_seconds =
        p.signature.classical_preprocess_seconds + p.signature.classical_postprocess_seconds;
    prepared.push_back(std::move(p));
  }

  // ---- simulation state ----------------------------------------------------
  EventQueue events;
  SimulationResult result;
  result.generated_apps = workload.size();
  result.unscheduled_apps = unscheduled;

  std::unordered_map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < prepared.size(); ++i) by_id[prepared[i].app.id] = i;

  std::vector<std::unique_ptr<QpuWorker>> workers;
  for (std::size_t q = 0; q < fleet.backends.size(); ++q) {
    const auto& backend = fleet.backends[q];
    result.qpu_names.push_back(backend->name());
    workers.push_back(std::make_unique<QpuWorker>(
        backend->name(), &events,
        [&, q, backend](const QpuJob& job, double start, double end) {
          auto& p = prepared[by_id.at(job.app_id)];
          p.record.start = start;
          p.record.quantum_done = end;
          p.record.quantum_exec_seconds = job.exec_seconds;
          p.record.measured_fidelity = estimator::executed_fidelity(
              p.transpiled.circuit, *backend, p.signature, hidden, config.crosstalk_factor,
              p.app.shots, rng);
          // Classical post-processing completes the application; the node
          // pool has effectively unlimited capacity (paper: classical waits
          // are ~0), so it adds processing time only.
          const double done = end + p.record.classical_seconds;
          events.schedule_at(done, [&, done] {
            p.record.completion = done;
            result.apps.push_back(p.record);
          });
        }));
  }

  std::vector<std::size_t> pending;  // indices into `prepared`

  // Builds the scheduler-facing estimates for the pending set under the
  // current calibrations and queue waits.
  auto build_input = [&](double now) {
    sched::SchedulingInput input;
    for (std::size_t q = 0; q < fleet.backends.size(); ++q) {
      sched::QpuState state;
      state.name = fleet.backends[q]->name();
      state.size = fleet.backends[q]->num_qubits();
      state.queue_wait_seconds = workers[q]->queue_wait(now);
      input.qpus.push_back(state);
    }
    for (std::size_t idx : pending) {
      auto& p = prepared[idx];
      sched::QuantumJob job;
      job.id = p.app.id;
      job.qubits = p.app.logical.num_qubits();
      job.shots = p.app.shots;
      job.arrival_time = p.app.arrival_time;
      job.est_exec_seconds = p.exec_seconds;
      job.est_fidelity.reserve(fleet.backends.size());
      for (std::size_t q = 0; q < fleet.backends.size(); ++q) {
        if (config.fidelity_model != nullptr && config.fidelity_model->trained()) {
          const auto features = estimator::extract_features(p.transpiled, p.app.shots,
                                                            p.app.spec, *fleet.backends[q]);
          job.est_fidelity.push_back(config.fidelity_model->estimate(features));
        } else {
          job.est_fidelity.push_back(estimator::predicted_fidelity(
              p.transpiled.circuit, *fleet.backends[q], p.signature));
        }
      }
      input.jobs.push_back(std::move(job));
    }
    return input;
  };

  auto dispatch = [&](std::size_t prepared_idx, int qpu, double now, double est_fidelity) {
    auto& p = prepared[prepared_idx];
    p.scheduled = true;
    p.record.scheduled_at = now;
    p.record.qpu = qpu;
    p.record.qpu_name = fleet.backends[static_cast<std::size_t>(qpu)]->name();
    p.record.est_fidelity = est_fidelity;
    workers[static_cast<std::size_t>(qpu)]->submit(
        {p.app.id, p.exec_seconds[static_cast<std::size_t>(qpu)]});
  };

  // One Qonductor scheduling cycle over the pending set.
  auto run_cycle = [&] {
    if (pending.empty()) return;
    const double now = events.now();
    const auto input = build_input(now);
    auto scheduler_config = config.scheduler;
    scheduler_config.nsga2.seed = rng();
    const auto decision = sched::schedule_cycle(input, scheduler_config);

    CycleRecord cycle;
    cycle.time = now;
    cycle.chosen = decision.chosen;
    cycle.preprocess_seconds = decision.preprocess_seconds;
    cycle.optimize_seconds = decision.optimize_seconds;
    cycle.select_seconds = decision.select_seconds;
    cycle.chosen_exec_seconds = decision.chosen_mean_exec_seconds;
    cycle.min_front_exec_seconds = decision.min_front_exec_seconds;
    cycle.max_front_exec_seconds = decision.max_front_exec_seconds;
    if (!decision.pareto_front.empty()) {
      cycle.min_front_jct = decision.pareto_front.front().mean_jct;
      cycle.max_front_jct = decision.pareto_front.front().mean_jct;
      cycle.min_front_fidelity = decision.pareto_front.front().mean_fidelity();
      cycle.max_front_fidelity = decision.pareto_front.front().mean_fidelity();
      for (const auto& pt : decision.pareto_front) {
        cycle.min_front_jct = std::min(cycle.min_front_jct, pt.mean_jct);
        cycle.max_front_jct = std::max(cycle.max_front_jct, pt.mean_jct);
        cycle.min_front_fidelity = std::min(cycle.min_front_fidelity, pt.mean_fidelity());
        cycle.max_front_fidelity = std::max(cycle.max_front_fidelity, pt.mean_fidelity());
      }
    }

    std::vector<std::size_t> still_pending;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const int qpu = decision.assignment[j];
      if (qpu < 0) {
        // No QPU can ever host this job: drop it (counted unscheduled).
        ++result.unscheduled_apps;
        continue;
      }
      dispatch(pending[j], qpu, now,
               input.jobs[j].est_fidelity[static_cast<std::size_t>(qpu)]);
      ++cycle.jobs_scheduled;
    }
    pending = std::move(still_pending);
    result.cycles.push_back(cycle);
  };

  // Per-arrival baseline assignment (FCFS / least-busy policies).
  auto assign_single = [&](std::size_t prepared_idx) {
    pending.assign(1, prepared_idx);
    const auto input = build_input(events.now());
    const auto assignment = config.policy == SchedulingPolicy::kBestFidelityFcfs
                                ? sched::assign_best_fidelity_fcfs(input)
                                : sched::assign_least_busy(input);
    if (assignment[0] < 0) {
      ++result.unscheduled_apps;
    } else {
      dispatch(prepared_idx, assignment[0], events.now(),
               input.jobs[0].est_fidelity[static_cast<std::size_t>(assignment[0])]);
    }
    pending.clear();
  };

  // ---- event wiring ---------------------------------------------------------
  sched::ScheduleTrigger trigger(config.queue_trigger, config.timer_trigger_seconds);
  const double arrival_horizon = config.workload.duration_hours * 3600.0;

  for (std::size_t i = 0; i < prepared.size(); ++i) {
    events.schedule_at(prepared[i].app.arrival_time, [&, i] {
      if (config.policy == SchedulingPolicy::kQonductor) {
        pending.push_back(i);
        if (trigger.should_fire(events.now(), pending.size())) {
          run_cycle();
          trigger.notify_fired(events.now());
        }
      } else {
        assign_single(i);
      }
    });
  }

  // Timer trigger: periodic cycles while arrivals continue (plus one drain
  // pass afterwards).
  if (config.policy == SchedulingPolicy::kQonductor) {
    const double interval = config.timer_trigger_seconds;
    for (double t = interval; t <= arrival_horizon + interval; t += interval) {
      events.schedule_at(t, [&] {
        if (trigger.should_fire(events.now(), pending.size())) {
          run_cycle();
          trigger.notify_fired(events.now());
        }
      });
    }
  }

  // Calibration cycles.
  const double cal_interval = config.calibration_interval_hours * 3600.0;
  for (double t = cal_interval; t <= arrival_horizon; t += cal_interval) {
    events.schedule_at(t, [&] {
      fleet.recalibrate_all(rng, events.now());
      if (config.policy == SchedulingPolicy::kQonductor && config.calibration_crossover) {
        // Partition every queue at the calibration boundary: unstarted jobs
        // are re-estimated and re-scheduled under the fresh calibration.
        for (auto& worker : workers) {
          for (const auto& job : worker->drain_unstarted()) {
            pending.push_back(by_id.at(job.app_id));
          }
        }
        if (!pending.empty()) {
          run_cycle();
          trigger.notify_fired(events.now());
        }
      }
    });
  }

  // Queue sampling.
  for (double t = 0.0; t <= arrival_horizon; t += config.queue_sample_interval_seconds) {
    events.schedule_at(t, [&] {
      QueueSample sample;
      sample.time = events.now();
      for (const auto& worker : workers) {
        sample.qpu_queue_lengths.push_back(worker->queue_length() + (worker->busy() ? 1 : 0));
      }
      sample.scheduler_pending = pending.size();
      result.queue_samples.push_back(std::move(sample));
    });
  }

  // ---- run -------------------------------------------------------------------
  const double hard_cap = arrival_horizon * 50.0;
  events.run_until(arrival_horizon);
  // Flush any leftover pending jobs, then drain the queues.
  if (config.policy == SchedulingPolicy::kQonductor && !pending.empty()) run_cycle();
  events.run_until(hard_cap);

  result.horizon_seconds = arrival_horizon;
  for (const auto& worker : workers) result.qpu_busy_seconds.push_back(worker->total_busy_seconds());
  std::sort(result.apps.begin(), result.apps.end(),
            [](const AppRecord& a, const AppRecord& b) { return a.completion < b.completion; });
  return result;
}

}  // namespace qon::cloudsim
