#pragma once
// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO ordering for simultaneous events, driving the cloud simulation's
// arrivals, scheduling triggers, calibration cycles and job completions.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace qon::cloudsim {

/// Minimal DES engine. Schedule callbacks at absolute simulated times and
/// run until the horizon or queue exhaustion.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time [s].
  double now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Events at equal times
  /// fire in scheduling order.
  void schedule_at(double at, Callback fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_in(double delay, Callback fn);

  /// Runs events until the queue empties or the next event exceeds
  /// `horizon`; returns the number of events processed. Events scheduled
  /// during execution are honored.
  std::size_t run_until(double horizon);

  /// True when no events remain.
  bool empty() const { return events_.empty(); }

  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace qon::cloudsim
