#include "cloudsim/qpu_worker.hpp"

#include <stdexcept>

namespace qon::cloudsim {

QpuWorker::QpuWorker(std::string name, EventQueue* events, CompletionCallback on_complete)
    : name_(std::move(name)), events_(events), on_complete_(std::move(on_complete)) {
  if (events_ == nullptr) throw std::invalid_argument("QpuWorker: null event queue");
}

void QpuWorker::submit(const QpuJob& job) {
  if (job.exec_seconds < 0.0) throw std::invalid_argument("QpuWorker::submit: negative time");
  queue_.push_back(job);
  if (!busy_) start_next();
}

double QpuWorker::queue_wait(double now) const {
  double wait = busy_ ? std::max(0.0, current_end_ - now) : 0.0;
  for (const auto& j : queue_) wait += j.exec_seconds;
  return wait;
}

std::vector<QpuJob> QpuWorker::drain_unstarted() {
  std::vector<QpuJob> drained(queue_.begin(), queue_.end());
  queue_.clear();
  return drained;
}

void QpuWorker::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  const QpuJob job = queue_.front();
  queue_.pop_front();
  busy_ = true;
  const double start = events_->now();
  current_end_ = start + job.exec_seconds;
  total_busy_ += job.exec_seconds;
  const std::uint64_t token = ++run_token_;
  events_->schedule_at(current_end_, [this, job, start, token] {
    if (token != run_token_) return;  // superseded (should not happen in FIFO)
    ++completed_;
    const double end = events_->now();
    if (on_complete_) on_complete_(job, start, end);
    start_next();
  });
}

}  // namespace qon::cloudsim
