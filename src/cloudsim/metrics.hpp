#pragma once
// Post-processing of simulation results into the time series and aggregates
// the paper's figures report: bucketed mean fidelity / completion time /
// QPU utilization over simulated time (Fig. 6), per-QPU load (Figs. 2c,
// 8c), and scheduler queue dynamics (Fig. 9b).

#include <vector>

#include "cloudsim/simulation.hpp"
#include "common/table.hpp"

namespace qon::cloudsim {

/// A (time, value) series bucketed at fixed intervals.
struct TimeSeries {
  std::vector<double> time;
  std::vector<double> value;
};

/// Mean measured fidelity of apps completed within each bucket.
TimeSeries fidelity_over_time(const SimulationResult& result, double bucket_seconds);

/// Cumulative mean JCT of apps completed up to each bucket end (the
/// monotone-growing curve of Fig. 6b).
TimeSeries mean_jct_over_time(const SimulationResult& result, double bucket_seconds);

/// Mean QPU utilization (busy fraction across the fleet) within each bucket,
/// reconstructed from per-app (start, quantum_done) intervals.
TimeSeries utilization_over_time(const SimulationResult& result, double bucket_seconds);

/// Scheduler pending-queue size over time (Fig. 9b).
TimeSeries scheduler_queue_over_time(const SimulationResult& result);

/// Per-QPU queue length over time for one QPU index (Fig. 2c).
TimeSeries qpu_queue_over_time(const SimulationResult& result, std::size_t qpu_index);

/// Converts a TimeSeries to the common Series printing type.
Series to_series(const TimeSeries& ts, const std::string& name);

}  // namespace qon::cloudsim
