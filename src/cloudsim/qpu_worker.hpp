#pragma once
// QPU worker: a single-server FIFO queue in the discrete-event simulation.
// Jobs are submitted with a fixed execution time; the worker starts them in
// order, reports completions through a callback, and exposes the queue
// state the scheduler and the system monitor read (queue length, estimated
// wait, total busy time). Supports draining unstarted jobs for calibration-
// crossover re-scheduling (§7).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloudsim/event_queue.hpp"

namespace qon::cloudsim {

/// A unit of quantum work queued on a worker.
struct QpuJob {
  std::uint64_t app_id = 0;
  double exec_seconds = 0.0;
};

/// Completion notification: (job, start_time, end_time).
using CompletionCallback = std::function<void(const QpuJob&, double, double)>;

class QpuWorker {
 public:
  QpuWorker(std::string name, EventQueue* events, CompletionCallback on_complete);

  const std::string& name() const { return name_; }

  /// Enqueues a job; starts it immediately when idle.
  void submit(const QpuJob& job);

  /// Pending jobs (excluding the one running).
  std::size_t queue_length() const { return queue_.size(); }

  /// True while a job is executing.
  bool busy() const { return busy_; }

  /// Estimated wait for a newly submitted job: remaining time of the
  /// running job plus queued execution times.
  double queue_wait(double now) const;

  /// Total execution seconds completed or started so far.
  double total_busy_seconds() const { return total_busy_; }

  /// Completed job count.
  std::size_t completed() const { return completed_; }

  /// Removes and returns all *unstarted* jobs (calibration crossover).
  std::vector<QpuJob> drain_unstarted();

 private:
  void start_next();

  std::string name_;
  EventQueue* events_;
  CompletionCallback on_complete_;
  std::deque<QpuJob> queue_;
  bool busy_ = false;
  double current_end_ = 0.0;
  std::uint64_t run_token_ = 0;  ///< invalidates stale completion events
  double total_busy_ = 0.0;
  std::size_t completed_ = 0;
};

}  // namespace qon::cloudsim
