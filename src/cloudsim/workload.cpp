#include "cloudsim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::cloudsim {

double diurnal_rate(double t_seconds, double base_jobs_per_hour) {
  // Sinusoid spanning [1100/1500, 2050/1500] of the base rate, period 24 h.
  const double lo = 1100.0 / 1500.0;
  const double hi = 2050.0 / 1500.0;
  const double mid = 0.5 * (lo + hi);
  const double amp = 0.5 * (hi - lo);
  const double phase = 2.0 * M_PI * t_seconds / (24.0 * 3600.0);
  return base_jobs_per_hour * (mid + amp * std::sin(phase));
}

std::vector<HybridApp> generate_workload(const WorkloadConfig& config) {
  if (config.jobs_per_hour <= 0.0 || config.duration_hours <= 0.0) {
    throw std::invalid_argument("generate_workload: rate and duration must be > 0");
  }
  Rng rng(config.seed);
  const auto families = circuit::all_benchmark_families();
  const auto menu = mitigation::standard_mitigation_menu();

  std::vector<HybridApp> apps;
  const double horizon = config.duration_hours * 3600.0;
  double t = 0.0;
  std::uint64_t id = 0;
  while (true) {
    // Thinning for the diurnal profile: draw at the max rate, accept
    // proportionally to the instantaneous rate.
    const double max_rate =
        config.diurnal ? config.jobs_per_hour * (2050.0 / 1500.0) : config.jobs_per_hour;
    t += rng.exponential(max_rate / 3600.0);
    if (t >= horizon) break;
    if (config.diurnal) {
      const double accept = diurnal_rate(t, config.jobs_per_hour) / max_rate;
      if (!rng.bernoulli(accept)) continue;
    }

    HybridApp app;
    app.id = id++;
    app.arrival_time = t;
    const int width = std::clamp(
        static_cast<int>(std::lround(rng.normal(config.mean_width, config.stddev_width))),
        config.min_width, config.max_width);
    const auto family =
        families[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(families.size()) - 1))];
    app.logical = circuit::make_benchmark(family, width, rng());
    app.shots = std::clamp(
        static_cast<int>(std::lround(rng.normal(config.mean_shots, config.stddev_shots))),
        config.min_shots, config.max_shots);
    if (rng.bernoulli(config.mitigated_fraction)) {
      // Skip the first menu entry ("none"); bias toward the cheap stacks.
      const std::size_t pick = 1 + static_cast<std::size_t>(rng.weighted_index(
                                       {4.0, 3.0, 3.0, 2.0, 2.0, 1.0, 0.5, 0.5}));
      app.spec = menu[std::min(pick, menu.size() - 1)];
      app.accelerator = rng.bernoulli(0.3) ? mitigation::Accelerator::kGpu
                                           : mitigation::Accelerator::kCpu;
    }
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace qon::cloudsim
