#include "cloudsim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "campaign/arrivals.hpp"

namespace qon::cloudsim {

namespace {

/// The campaign arrival process matching a WorkloadConfig: homogeneous
/// Poisson, or the diurnal band (the campaign defaults ARE the measured
/// IBM band this generator always used).
campaign::ArrivalSpec arrival_spec(const WorkloadConfig& config) {
  campaign::ArrivalSpec spec;
  spec.kind = config.diurnal ? campaign::ArrivalKind::kDiurnal
                             : campaign::ArrivalKind::kPoisson;
  spec.rate_per_hour = config.jobs_per_hour;
  return spec;
}

}  // namespace

double diurnal_rate(double t_seconds, double base_jobs_per_hour) {
  campaign::ArrivalSpec spec;
  spec.kind = campaign::ArrivalKind::kDiurnal;
  spec.rate_per_hour = base_jobs_per_hour;
  return campaign::ArrivalProcess(spec).rate_at(t_seconds);
}

std::vector<HybridApp> generate_workload(const WorkloadConfig& config) {
  if (config.jobs_per_hour <= 0.0 || config.duration_hours <= 0.0) {
    throw std::invalid_argument("generate_workload: rate and duration must be > 0");
  }
  Rng rng(config.seed);
  const auto families = circuit::all_benchmark_families();
  const auto menu = mitigation::standard_mitigation_menu();
  // Arrival instants come from the shared campaign generator; its RNG
  // contract (one gap draw per candidate, one thinning bernoulli per
  // in-horizon diurnal candidate) keeps pre-existing seeded traces
  // bit-for-bit identical.
  const campaign::ArrivalProcess arrivals(arrival_spec(config));

  std::vector<HybridApp> apps;
  const double horizon = config.duration_hours * 3600.0;
  double t = 0.0;
  std::uint64_t id = 0;
  while ((t = arrivals.next(t, horizon, rng)) < horizon) {
    HybridApp app;
    app.id = id++;
    app.arrival_time = t;
    const int width = std::clamp(
        static_cast<int>(std::lround(rng.normal(config.mean_width, config.stddev_width))),
        config.min_width, config.max_width);
    const auto family =
        families[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(families.size()) - 1))];
    app.logical = circuit::make_benchmark(family, width, rng());
    app.shots = std::clamp(
        static_cast<int>(std::lround(rng.normal(config.mean_shots, config.stddev_shots))),
        config.min_shots, config.max_shots);
    if (rng.bernoulli(config.mitigated_fraction)) {
      // Skip the first menu entry ("none"); bias toward the cheap stacks.
      const std::size_t pick = 1 + static_cast<std::size_t>(rng.weighted_index(
                                       {4.0, 3.0, 3.0, 2.0, 2.0, 1.0, 0.5, 0.5}));
      app.spec = menu[std::min(pick, menu.size() - 1)];
      app.accelerator = rng.bernoulli(0.3) ? mitigation::Accelerator::kGpu
                                           : mitigation::Accelerator::kCpu;
    }
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace qon::cloudsim
