#include "cloudsim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::cloudsim {

namespace {

std::size_t bucket_count(double horizon, double bucket_seconds) {
  if (bucket_seconds <= 0.0) throw std::invalid_argument("metrics: bucket must be > 0");
  return static_cast<std::size_t>(std::ceil(horizon / bucket_seconds));
}

}  // namespace

TimeSeries fidelity_over_time(const SimulationResult& result, double bucket_seconds) {
  const std::size_t buckets = bucket_count(result.horizon_seconds, bucket_seconds);
  std::vector<double> sum(buckets, 0.0);
  std::vector<std::size_t> count(buckets, 0);
  for (const auto& app : result.apps) {
    const auto b = static_cast<std::size_t>(app.completion / bucket_seconds);
    if (b >= buckets) continue;  // completed after the arrival horizon
    sum[b] += app.measured_fidelity;
    ++count[b];
  }
  TimeSeries ts;
  double last = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    ts.time.push_back((static_cast<double>(b) + 1.0) * bucket_seconds);
    if (count[b] > 0) last = sum[b] / static_cast<double>(count[b]);
    ts.value.push_back(last);
  }
  return ts;
}

TimeSeries mean_jct_over_time(const SimulationResult& result, double bucket_seconds) {
  const std::size_t buckets = bucket_count(result.horizon_seconds, bucket_seconds);
  // Apps are sorted by completion; accumulate the running mean.
  TimeSeries ts;
  double acc = 0.0;
  std::size_t n = 0;
  std::size_t app_idx = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double end = (static_cast<double>(b) + 1.0) * bucket_seconds;
    while (app_idx < result.apps.size() && result.apps[app_idx].completion <= end) {
      acc += result.apps[app_idx].jct();
      ++n;
      ++app_idx;
    }
    ts.time.push_back(end);
    ts.value.push_back(n > 0 ? acc / static_cast<double>(n) : 0.0);
  }
  return ts;
}

TimeSeries utilization_over_time(const SimulationResult& result, double bucket_seconds) {
  const std::size_t buckets = bucket_count(result.horizon_seconds, bucket_seconds);
  std::vector<double> busy(buckets, 0.0);
  for (const auto& app : result.apps) {
    if (app.qpu < 0) continue;
    // Spread the execution interval across the buckets it overlaps.
    double t0 = app.start;
    const double t1 = std::min(app.quantum_done, result.horizon_seconds);
    while (t0 < t1) {
      const auto b = static_cast<std::size_t>(t0 / bucket_seconds);
      if (b >= buckets) break;
      const double bucket_end = (static_cast<double>(b) + 1.0) * bucket_seconds;
      const double step = std::min(t1, bucket_end) - t0;
      busy[b] += step;
      t0 += step;
    }
  }
  const double fleet = static_cast<double>(std::max<std::size_t>(result.qpu_names.size(), 1));
  TimeSeries ts;
  for (std::size_t b = 0; b < buckets; ++b) {
    ts.time.push_back((static_cast<double>(b) + 1.0) * bucket_seconds);
    ts.value.push_back(100.0 * busy[b] / (bucket_seconds * fleet));
  }
  return ts;
}

TimeSeries scheduler_queue_over_time(const SimulationResult& result) {
  TimeSeries ts;
  for (const auto& sample : result.queue_samples) {
    ts.time.push_back(sample.time);
    ts.value.push_back(static_cast<double>(sample.scheduler_pending));
  }
  return ts;
}

TimeSeries qpu_queue_over_time(const SimulationResult& result, std::size_t qpu_index) {
  if (qpu_index >= result.qpu_names.size()) {
    throw std::out_of_range("qpu_queue_over_time: bad QPU index");
  }
  TimeSeries ts;
  for (const auto& sample : result.queue_samples) {
    ts.time.push_back(sample.time);
    ts.value.push_back(static_cast<double>(sample.qpu_queue_lengths[qpu_index]));
  }
  return ts;
}

Series to_series(const TimeSeries& ts, const std::string& name) {
  return Series{name, ts.time, ts.value};
}

}  // namespace qon::cloudsim
