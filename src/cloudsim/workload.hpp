#pragma once
// Load generator (§8.2): synthesizes hybrid applications mirroring the
// measured IBM workload — Poisson arrivals at a configurable jobs/hour rate
// with optional diurnal modulation (1100-2050 j/h around a 1500 mean),
// normally distributed circuit widths and shot counts, and ~50% of
// applications using error mitigation (hence hybrid resources).

#include <cstdint>
#include <vector>

#include "circuit/library.hpp"
#include "common/rng.hpp"
#include "mitigation/pipeline.hpp"

namespace qon::cloudsim {

/// One generated hybrid application (pre-transpilation).
struct HybridApp {
  std::uint64_t id = 0;
  double arrival_time = 0.0;  ///< [s]
  circuit::Circuit logical;
  int shots = 4000;
  mitigation::MitigationSpec spec;          ///< empty stack = unmitigated
  mitigation::Accelerator accelerator = mitigation::Accelerator::kCpu;
};

struct WorkloadConfig {
  double jobs_per_hour = 1500.0;  ///< measured IBM mean (§8.2)
  double duration_hours = 1.0;
  bool diurnal = false;           ///< modulate rate between 1100 and 2050 j/h
  double mitigated_fraction = 0.5;
  /// Width distribution tuned so the fleet-mean execution fidelity lands in
  /// the paper's 0.7-0.8 band (Fig. 6a): mostly small-to-medium circuits
  /// with a tail of wide ones.
  double mean_width = 7.0;
  double stddev_width = 3.5;
  int min_width = 2;
  int max_width = 26;
  double mean_shots = 4000.0;
  double stddev_shots = 1500.0;
  int min_shots = 500;
  int max_shots = 10000;
  std::uint64_t seed = 1;
};

/// Generates the full arrival trace, sorted by arrival time.
std::vector<HybridApp> generate_workload(const WorkloadConfig& config);

/// Instantaneous arrival rate at time-of-day `t` seconds (diurnal profile:
/// sinusoid between 1100 and 2050 jobs/hour, mean ~1500).
double diurnal_rate(double t_seconds, double base_jobs_per_hour);

}  // namespace qon::cloudsim
