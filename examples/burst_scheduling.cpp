// Burst scheduling: the batch-scheduling job manager in action (§7). A
// client fans out a burst of workflow runs; instead of each quantum task
// greedily grabbing a QPU, the tasks park in the scheduler service's
// pending queue and scheduling cycles — fired by the queue-size threshold
// or the timer — assign whole batches through the hybrid scheduler
// (NSGA-II + MCDM). getSchedulerStats shows the cycles as they happened:
// batch sizes, queue waits, and the Fig. 9c per-stage timings. The same
// burst is then replayed in SchedulingMode::kImmediate (the greedy
// per-task fallback) for comparison.

#include <iostream>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace {

constexpr std::size_t kRuns = 32;

qon::core::QonductorConfig base_config() {
  qon::core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 90;
  config.executor_threads = kRuns;  // the whole burst can park at once
  config.retention.max_terminal_runs = kRuns + 8;
  return config;
}

/// Deploys the burst image and runs the whole burst to completion.
/// Returns the wall-clock seconds the burst took.
double run_burst(qon::api::QonductorClient& client) {
  qon::api::CreateWorkflowRequest create;
  create.name = "burst";
  create.tasks.push_back(qon::workflow::HybridTask::quantum(
      "ghz", qon::circuit::ghz(4), 1000));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return -1.0;
  }
  qon::api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return -1.0;
  }

  std::vector<qon::api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = created->image;
  qon::Stopwatch wall;
  const auto handles = client.invokeAll(requests);
  if (!handles.ok()) {
    std::cerr << handles.status().to_string() << "\n";
    return -1.0;
  }
  for (const auto& handle : *handles) handle.wait();
  return wall.seconds();
}

}  // namespace

int main() {
  using namespace qon;

  // --- batch mode (the default): cycles assign whole batches ------------------
  auto batch_config = base_config();
  batch_config.scheduler_service.queue_threshold = 8;   // fire at 8 pending jobs…
  batch_config.scheduler_service.max_batch_size = 12;   // …and cap a cycle at 12
  batch_config.scheduler_service.linger = std::chrono::milliseconds(50);
  api::QonductorClient batch_client(batch_config);

  std::cout << "submitting a burst of " << kRuns << " runs in batch mode...\n";
  const double batch_wall = run_burst(batch_client);
  if (batch_wall < 0.0) return 1;

  const auto batch_stats = batch_client.getSchedulerStats();
  if (!batch_stats.ok()) {
    std::cerr << batch_stats.status().to_string() << "\n";
    return 1;
  }
  const api::SchedulerStats& stats = batch_stats->stats;

  TextTable cycles({"cycle", "trigger", "batch", "scheduled", "queue after",
                    "mean wait [s]", "optimize [ms]"});
  for (const auto& cycle : stats.recent_cycles) {
    cycles.add_row({std::to_string(cycle.cycle),
                    api::cycle_trigger_name(cycle.trigger),
                    std::to_string(cycle.batch_size),
                    std::to_string(cycle.scheduled),
                    std::to_string(cycle.queue_depth_after),
                    TextTable::num(cycle.mean_queue_wait_seconds, 1),
                    TextTable::num(cycle.optimize_seconds * 1e3, 2)});
  }
  cycles.print(std::cout, "scheduling cycles (getSchedulerStats)");

  auto waits = stats.recent_queue_waits;
  TextTable summary({"metric", "value"});
  summary.add_row({"mode", api::scheduling_mode_name(batch_stats->config.mode)});
  summary.add_row({"cycles", std::to_string(stats.cycles)});
  summary.add_row({"jobs scheduled", std::to_string(stats.jobs_scheduled)});
  summary.add_row({"largest batch", std::to_string(stats.max_batch_size_seen)});
  summary.add_row({"queue high watermark", std::to_string(stats.queue_high_watermark)});
  summary.add_row({"queue wait p50 [s]", TextTable::num(percentile(waits, 50.0), 1)});
  summary.add_row({"queue wait p95 [s]", TextTable::num(percentile(waits, 95.0), 1)});
  summary.print(std::cout, "batch mode");

  // --- immediate mode: the explicit greedy fallback ---------------------------
  auto immediate_config = base_config();
  immediate_config.scheduler_service.mode = core::SchedulingMode::kImmediate;
  api::QonductorClient immediate_client(immediate_config);

  std::cout << "\nreplaying the burst in immediate mode...\n";
  const double immediate_wall = run_burst(immediate_client);
  if (immediate_wall < 0.0) return 1;
  const auto immediate_stats = immediate_client.getSchedulerStats();

  TextTable compare({"mode", "scheduling cycles", "burst wall time [ms]"});
  compare.add_row({"batch (default)", std::to_string(stats.cycles),
                   TextTable::num(batch_wall * 1e3, 0)});
  compare.add_row({"immediate (fallback)",
                   std::to_string(immediate_stats.ok() ? immediate_stats->stats.cycles : 0),
                   TextTable::num(immediate_wall * 1e3, 0)});
  compare.print(std::cout, "batch vs immediate");

  std::cout << "\nbatch mode dispatched " << stats.jobs_scheduled << " jobs in "
            << stats.cycles << " hybrid-scheduler cycles; immediate mode ran one "
            << "greedy single-job cycle per task.\n";
  return 0;
}
