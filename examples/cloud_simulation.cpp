// Cloud-operator view: run the discrete-event cloud simulation under all
// three scheduling policies and compare fleet-level metrics — the §8.3
// experiment at example scale.
//
// This drives the simulator directly rather than the v1 client facade:
// the cloudsim workload generator stands in for the thousands of tenants
// that would otherwise reach the control plane through api::QonductorClient
// (see examples/quickstart.cpp and examples/async_fanout.cpp for that path).

#include <iostream>

#include "cloudsim/metrics.hpp"
#include "cloudsim/simulation.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;

  TextTable table({"policy", "apps", "mean fidelity", "mean JCT [s]", "utilization",
                   "max QPU share"});
  for (const auto policy : {SchedulingPolicy::kQonductor, SchedulingPolicy::kBestFidelityFcfs,
                            SchedulingPolicy::kLeastBusy}) {
    CloudSimConfig config;
    config.policy = policy;
    config.num_qpus = 4;
    config.seed = 11;
    config.workload.jobs_per_hour = 900.0;
    config.workload.duration_hours = 0.25;
    config.workload.seed = 11;
    config.queue_trigger = 25;
    config.timer_trigger_seconds = 60.0;
    const auto result = run_cloud_simulation(config);

    double total_busy = 0.0;
    double max_busy = 0.0;
    for (double b : result.qpu_busy_seconds) {
      total_busy += b;
      max_busy = std::max(max_busy, b);
    }
    table.add_row({policy_name(policy), std::to_string(result.apps.size()),
                   TextTable::num(result.mean_fidelity(), 3),
                   TextTable::num(result.mean_jct(), 1),
                   TextTable::num(100.0 * result.mean_utilization(), 1) + "%",
                   TextTable::num(100.0 * max_busy / std::max(total_busy, 1e-9), 1) + "%"});
  }
  table.print(std::cout, "15 simulated minutes @ 900 jobs/h on 4 QPUs");

  std::cout << "\nReading: Qonductor balances load (low max-QPU share) and cuts JCTs;\n"
               "best-fidelity FCFS concentrates on one hotspot; least-busy spreads\n"
               "load but ignores fidelity.\n";
  return 0;
}
