// Quickstart: the Qonductor user-facing API from Table 2 / Listing 2,
// through the v1 typed client facade.
//
// Builds a hybrid workflow (classical pre-processing, a mitigated QAOA
// circuit, classical post-processing), packages it as a workflow image,
// deploys it, invokes it asynchronously, and reads the results back — the
// createWorkflow / deploy / invoke / workflowResults flow of the paper.
// Every call returns api::Result<T>: errors are typed Status values
// (NOT_FOUND, FAILED_PRECONDITION, ...), never exceptions.

#include <iostream>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;

  // A client over an orchestrator with a 4-QPU simulated fleet and a
  // classical node pool.
  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 7;
  api::QonductorClient client(config);

  // --- compose the hybrid workflow (cf. Listing 2) --------------------------
  mitigation::MitigationSpec mitigated;
  mitigated.stack = {mitigation::Technique::kRem, mitigation::Technique::kDd};

  api::CreateWorkflowRequest create;
  create.name = "qaoa-quickstart";
  create.tasks.push_back(workflow::HybridTask::classical("zne-prepare", 0.3));
  create.tasks.push_back(workflow::HybridTask::quantum(
      "qaoa-maxcut", circuit::qaoa_maxcut(6, 1, 42), 4000, mitigated));
  create.tasks.push_back(workflow::HybridTask::classical("rem-inference", 0.5,
                                                         mitigation::Accelerator::kGpu));

  // Deployment configuration in the paper's Listing-1 YAML shape.
  create.yaml_config =
      "spec:\n"
      "  containers:\n"
      "  - name: qaoa-error-mitigated\n"
      "    resources:\n"
      "      limits:\n"
      "        nvidia.com/gpu: 1\n"
      "  - name: qaoa-algorithm\n"
      "    resources:\n"
      "      limits:\n"
      "        quantum.ibm.com/qpu: 1\n"
      "        qubits: 6\n";

  // --- create -> deploy -> invoke -> results ---------------------------------
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << "createWorkflow failed: " << created.status().to_string() << "\n";
    return 1;
  }

  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
    std::cerr << "deploy failed: " << deployed.status().to_string() << "\n";
    return 1;
  }

  // invoke() is non-blocking: it hands back a RunHandle while the workflow
  // DAG executes on the orchestrator's executor pool. A client can submit
  // more work, poll, or attach a deadline — here we just wait.
  api::InvokeRequest invoke_request;
  invoke_request.image = created->image;
  const auto handle = client.invoke(invoke_request);
  if (!handle.ok()) {
    std::cerr << "invoke failed: " << handle.status().to_string() << "\n";
    return 1;
  }
  std::cout << "run " << handle->id() << " submitted, status '"
            << api::run_status_name(handle->poll()) << "'; waiting...\n\n";
  handle->wait();

  const auto report = handle->result();
  if (!report.ok()) {
    std::cerr << "result failed: " << report.status().to_string() << "\n";
    return 1;
  }
  const api::WorkflowResult& result = *report;

  TextTable table({"task", "kind", "resource", "start [s]", "end [s]", "fidelity", "cost [$]"});
  for (const auto& task : result.tasks) {
    table.add_row({task.name, workflow::task_kind_name(task.kind), task.resource,
                   TextTable::num(task.start, 2), TextTable::num(task.end, 2),
                   task.kind == workflow::TaskKind::kQuantum ? TextTable::num(task.fidelity, 3)
                                                             : "-",
                   TextTable::num(task.cost_dollars, 3)});
  }
  table.print(std::cout, "workflow run " + std::to_string(result.run));

  std::cout << "status:      " << api::run_status_name(result.status) << "\n";
  std::cout << "makespan:    " << TextTable::num(result.makespan_seconds, 2) << " s\n";
  std::cout << "total cost:  $" << TextTable::num(result.total_cost_dollars, 3) << "\n";
  std::cout << "min fidelity " << TextTable::num(result.min_fidelity, 3) << "\n";

  // The control plane's lifecycle record of the same run — what a remote
  // dashboard would read via getRun(): state plus timestamps on the fleet's
  // virtual clock.
  if (const auto info = client.getRun(handle->id()); info.ok()) {
    std::cout << "run record:  submitted@" << TextTable::num(info->submitted_at, 2)
              << "s, started@" << TextTable::num(info->started_at, 2)
              << "s, finished@" << TextTable::num(info->finished_at, 2) << "s\n";
  }

  // The quantum task was small enough for exact trajectory simulation: show
  // the top measurement outcomes.
  for (const auto& task : result.tasks) {
    if (task.counts.empty()) continue;
    std::cout << "\ncounts for '" << task.name << "' (top 5):\n";
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(task.counts.begin(),
                                                                task.counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
      std::cout << "  " << sim::bitstring(sorted[i].first, 6) << " : " << sorted[i].second
                << "\n";
    }
  }
  return 0;
}
