// Quickstart: the Qonductor user-facing API from Table 2 / Listing 2.
//
// Builds a hybrid workflow (classical pre-processing, a mitigated QAOA
// circuit, classical post-processing), packages it as a workflow image,
// deploys it, invokes it, and reads the results back — exactly the
// createWorkflow / deploy / invoke / workflowResults flow of the paper.

#include <iostream>

#include "circuit/library.hpp"
#include "common/table.hpp"
#include "core/orchestrator.hpp"

int main() {
  using namespace qon;

  // An orchestrator over a 4-QPU simulated fleet and a classical node pool.
  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 7;
  core::Qonductor qonductor(config);

  // --- compose the hybrid workflow (cf. Listing 2) --------------------------
  mitigation::MitigationSpec mitigated;
  mitigated.stack = {mitigation::Technique::kRem, mitigation::Technique::kDd};

  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::classical("zne-prepare", 0.3));
  tasks.push_back(workflow::HybridTask::quantum(
      "qaoa-maxcut", circuit::qaoa_maxcut(6, 1, 42), 4000, mitigated));
  tasks.push_back(workflow::HybridTask::classical("rem-inference", 0.5,
                                                  mitigation::Accelerator::kGpu));

  // Deployment configuration in the paper's Listing-1 YAML shape.
  const std::string deployment =
      "spec:\n"
      "  containers:\n"
      "  - name: qaoa-error-mitigated\n"
      "    resources:\n"
      "      limits:\n"
      "        nvidia.com/gpu: 1\n"
      "  - name: qaoa-algorithm\n"
      "    resources:\n"
      "      limits:\n"
      "        quantum.ibm.com/qpu: 1\n"
      "        qubits: 6\n";

  // --- create -> deploy -> invoke -> results ---------------------------------
  const auto image = qonductor.createWorkflow("qaoa-quickstart", std::move(tasks), deployment);
  qonductor.deploy(image);
  const auto run = qonductor.invoke(image);

  while (qonductor.workflowStatus(run) != core::WorkflowStatus::kCompleted) {
    // In this simulated deployment invoke() is synchronous, so this loop
    // (the Listing-2 polling idiom) exits immediately.
  }
  const auto& result = qonductor.workflowResults(run);

  TextTable table({"task", "kind", "resource", "start [s]", "end [s]", "fidelity", "cost [$]"});
  for (const auto& task : result.tasks) {
    table.add_row({task.name, workflow::task_kind_name(task.kind), task.resource,
                   TextTable::num(task.start, 2), TextTable::num(task.end, 2),
                   task.kind == workflow::TaskKind::kQuantum ? TextTable::num(task.fidelity, 3)
                                                             : "-",
                   TextTable::num(task.cost_dollars, 3)});
  }
  table.print(std::cout, "workflow run " + std::to_string(run));

  std::cout << "status:      " << core::workflow_status_name(result.status) << "\n";
  std::cout << "makespan:    " << TextTable::num(result.makespan_seconds, 2) << " s\n";
  std::cout << "total cost:  $" << TextTable::num(result.total_cost_dollars, 3) << "\n";
  std::cout << "min fidelity " << TextTable::num(result.min_fidelity, 3) << "\n";

  // The quantum task was small enough for exact trajectory simulation: show
  // the top measurement outcomes.
  for (const auto& task : result.tasks) {
    if (task.counts.empty()) continue;
    std::cout << "\ncounts for '" << task.name << "' (top 5):\n";
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(task.counts.begin(),
                                                                task.counts.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size()); ++i) {
      std::cout << "  " << sim::bitstring(sorted[i].first, 6) << " : " << sorted[i].second
                << "\n";
    }
  }
  return 0;
}
