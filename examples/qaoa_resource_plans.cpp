// Resource-plan exploration (§6): ask the resource estimator for costed
// execution options for a QAOA circuit, inspect the fidelity/runtime/cost
// tradeoffs, pick the balanced plan, and run the workflow with its
// mitigation stack — the workflow of a cost-conscious cloud user, driven
// through the v1 typed client facade.

#include <iostream>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 21;
  api::QonductorClient client(config);

  const auto circ = circuit::qaoa_maxcut(12, 2, 5);
  std::cout << "circuit: " << circ.name() << ", " << circ.num_qubits() << " qubits, depth "
            << circ.depth() << ", " << circ.two_qubit_gate_count() << " two-qubit gates\n\n";

  // --- request plans ----------------------------------------------------------
  const auto plans = client.estimateResources(circ);
  if (!plans.ok()) {
    std::cerr << "estimateResources failed: " << plans.status().to_string() << "\n";
    return 1;
  }
  TextTable table({"plan", "accelerator", "est fidelity", "est runtime [s]", "est cost [$]"});
  for (const auto& plan : plans->recommended) {
    table.add_row({plan.spec.to_string(), mitigation::accelerator_name(plan.accelerator),
                   TextTable::num(plan.est_fidelity, 3),
                   TextTable::num(plan.est_total_seconds, 1),
                   TextTable::num(plan.est_cost_dollars, 2)});
  }
  table.print(std::cout, "recommended resource plans (fast / balanced / faithful)");

  // --- choose the balanced plan (middle recommendation) and execute -----------
  const auto& chosen = plans->recommended[plans->recommended.size() / 2];
  std::cout << "\nchosen plan: " << chosen.spec.to_string() << " on "
            << mitigation::accelerator_name(chosen.accelerator) << "\n\n";

  api::CreateWorkflowRequest create;
  create.name = "qaoa-planned";
  auto quantum = workflow::HybridTask::quantum("qaoa", circ, 4000, chosen.spec);
  quantum.accelerator = chosen.accelerator;
  create.tasks.push_back(std::move(quantum));
  if (!chosen.spec.stack.empty()) {
    create.tasks.push_back(workflow::HybridTask::classical(
        "post-process", chosen.est_classical_seconds, chosen.accelerator));
  }
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << "createWorkflow failed: " << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
    std::cerr << "deploy failed: " << deployed.status().to_string() << "\n";
    return 1;
  }
  api::InvokeRequest invoke_request;
  invoke_request.image = created->image;
  const auto handle = client.invoke(invoke_request);
  if (!handle.ok()) {
    std::cerr << "invoke failed: " << handle.status().to_string() << "\n";
    return 1;
  }
  const auto report = handle->result();  // block until the async run finishes
  if (!report.ok()) {
    std::cerr << "result failed: " << report.status().to_string() << "\n";
    return 1;
  }
  const auto& result = *report;

  TextTable outcome({"metric", "estimated", "measured"});
  outcome.add_row({"fidelity", TextTable::num(chosen.est_fidelity, 3),
                   TextTable::num(result.tasks[0].fidelity, 3)});
  outcome.add_row({"cost [$]", TextTable::num(chosen.est_cost_dollars, 2),
                   TextTable::num(result.total_cost_dollars, 2)});
  outcome.print(std::cout, "plan vs execution");
  std::cout << "executed on: " << result.tasks[0].resource << "\n";
  return 0;
}
