// Resource-plan exploration (§6): ask the resource estimator for costed
// execution options for a QAOA circuit, inspect the fidelity/runtime/cost
// tradeoffs, pick the balanced plan, and run the workflow with its
// mitigation stack — the workflow of a cost-conscious cloud user.

#include <iostream>

#include "circuit/library.hpp"
#include "common/table.hpp"
#include "core/orchestrator.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 21;
  core::Qonductor qonductor(config);

  const auto circ = circuit::qaoa_maxcut(12, 2, 5);
  std::cout << "circuit: " << circ.name() << ", " << circ.num_qubits() << " qubits, depth "
            << circ.depth() << ", " << circ.two_qubit_gate_count() << " two-qubit gates\n\n";

  // --- request plans ----------------------------------------------------------
  const auto plans = qonductor.estimateResources(circ);
  TextTable table({"plan", "accelerator", "est fidelity", "est runtime [s]", "est cost [$]"});
  for (const auto& plan : plans.recommended) {
    table.add_row({plan.spec.to_string(), mitigation::accelerator_name(plan.accelerator),
                   TextTable::num(plan.est_fidelity, 3),
                   TextTable::num(plan.est_total_seconds, 1),
                   TextTable::num(plan.est_cost_dollars, 2)});
  }
  table.print(std::cout, "recommended resource plans (fast / balanced / faithful)");

  // --- choose the balanced plan (middle recommendation) and execute -----------
  const auto& chosen = plans.recommended[plans.recommended.size() / 2];
  std::cout << "\nchosen plan: " << chosen.spec.to_string() << " on "
            << mitigation::accelerator_name(chosen.accelerator) << "\n\n";

  std::vector<workflow::HybridTask> tasks;
  auto quantum = workflow::HybridTask::quantum("qaoa", circ, 4000, chosen.spec);
  quantum.accelerator = chosen.accelerator;
  tasks.push_back(std::move(quantum));
  if (!chosen.spec.stack.empty()) {
    tasks.push_back(workflow::HybridTask::classical(
        "post-process", chosen.est_classical_seconds, chosen.accelerator));
  }
  const auto image = qonductor.createWorkflow("qaoa-planned", std::move(tasks));
  qonductor.deploy(image);
  const auto run = qonductor.invoke(image);
  const auto& result = qonductor.workflowResults(run);

  TextTable outcome({"metric", "estimated", "measured"});
  outcome.add_row({"fidelity", TextTable::num(chosen.est_fidelity, 3),
                   TextTable::num(result.tasks[0].fidelity, 3)});
  outcome.add_row({"cost [$]", TextTable::num(chosen.est_cost_dollars, 2),
                   TextTable::num(result.total_cost_dollars, 2)});
  outcome.print(std::cout, "plan vs execution");
  std::cout << "executed on: " << result.tasks[0].resource << "\n";
  return 0;
}
