// Iterative hybrid workflow: a miniature VQE loop. Each iteration deploys
// a parameterized ansatz as a quantum task, estimates an Ising-style energy
// <H> = -sum <Z_i Z_{i+1}> from the measured counts, and keeps the best
// parameters — the classical-optimizer-in-the-loop pattern (paper §2.2)
// that motivates hybrid orchestration.

#include <cmath>
#include <iostream>

#include "api/client.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace qon;

// Hardware-efficient ansatz with explicit angles.
circuit::Circuit ansatz(const std::vector<double>& theta, int n) {
  circuit::Circuit c(n, "vqe-ansatz");
  for (int q = 0; q < n; ++q) c.ry(q, theta[static_cast<std::size_t>(q)]);
  for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (int q = 0; q < n; ++q) c.ry(q, theta[static_cast<std::size_t>(n + q)]);
  c.measure_all();
  return c;
}

// <H> with H = -sum_i Z_i Z_{i+1}, estimated from Z-basis counts.
double ising_energy(const sim::Counts& counts, int n) {
  double energy = 0.0;
  std::uint64_t shots = 0;
  for (const auto& [outcome, count] : counts) shots += count;
  for (const auto& [outcome, count] : counts) {
    double e = 0.0;
    for (int q = 0; q + 1 < n; ++q) {
      const int z0 = (outcome >> q) & 1 ? -1 : 1;
      const int z1 = (outcome >> (q + 1)) & 1 ? -1 : 1;
      e -= z0 * z1;
    }
    energy += e * static_cast<double>(count) / static_cast<double>(shots);
  }
  return energy;
}

}  // namespace

int main() {
  const int n = 6;
  core::QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 33;
  api::QonductorClient client(config);
  Rng rng(9);

  std::vector<double> theta(2 * n);
  for (auto& t : theta) t = rng.uniform(-0.3, 0.3);
  double best_energy = 1e9;
  std::vector<double> best_theta = theta;

  TextTable table({"iteration", "energy <H>", "fidelity", "QPU", "accepted"});
  for (int iter = 0; iter < 6; ++iter) {
    // Classical proposal step: perturb the best parameters.
    std::vector<double> trial = best_theta;
    for (auto& t : trial) t += rng.normal(0.0, 0.25);

    // Quantum step through the typed client facade. The optimizer needs
    // this iteration's counts before proposing the next point, so the
    // async handle is waited on immediately.
    api::CreateWorkflowRequest create;
    create.name = "vqe-iter-" + std::to_string(iter);
    create.tasks.push_back(workflow::HybridTask::quantum("ansatz", ansatz(trial, n), 4000));
    const auto created = client.createWorkflow(create);
    if (!created.ok()) {
      std::cerr << created.status().to_string() << "\n";
      return 1;
    }
    api::DeployRequest deploy_request;
    deploy_request.image = created->image;
    if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
      std::cerr << deployed.status().to_string() << "\n";
      return 1;
    }
    api::InvokeRequest invoke_request;
    invoke_request.image = created->image;
    const auto handle = client.invoke(invoke_request);
    if (!handle.ok()) {
      std::cerr << handle.status().to_string() << "\n";
      return 1;
    }
    const auto report = handle->result();  // waits for the run to finish
    if (!report.ok()) {
      std::cerr << report.status().to_string() << "\n";
      return 1;
    }
    const auto& task = report->tasks[0];
    const double energy = ising_energy(task.counts, n);

    const bool accept = energy < best_energy;
    if (accept) {
      best_energy = energy;
      best_theta = trial;
    }
    table.add_row({std::to_string(iter), TextTable::num(energy, 3),
                   TextTable::num(task.fidelity, 3), task.resource, accept ? "yes" : "no"});
  }
  table.print(std::cout, "VQE iterations (Ising chain, H = -sum Z_i Z_{i+1})");
  std::cout << "ground truth minimum: " << -(n - 1) << " (all spins aligned)\n";
  std::cout << "best energy found:    " << TextTable::num(best_energy, 3) << "\n";
  return 0;
}
