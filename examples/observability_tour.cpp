// Observability tour: the telemetry subsystem end to end. A mixed-priority
// burst runs through the batch scheduler while (1) the run-lifecycle tracer
// stamps every edge — submit, admission, park, queue wait, the cycle's
// preprocess/optimize/select stages, dispatch, QPU execution, settle — on
// BOTH the fleet virtual clock and the wall clock, and (2) the central
// metrics registry counts admissions per class, scheduling cycles, cache
// hits and run latencies. Afterwards the example prints the Prometheus
// exposition a scrape endpoint would serve (getMetrics +
// obs::render_prometheus) and one run's full trace timeline
// (getRunTrace) — the "where did run N's 90 ms go?" view.
//
// Set QON_LOG_LEVEL=debug to additionally watch the structured key=value
// logs (run ids threaded through engine and scheduler) stream by.

#include <iomanip>
#include <iostream>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 23;
  config.trajectory_width_limit = 0;  // analytic model keeps the tour instant
  config.executor_threads = 4;
  config.scheduler_service.queue_threshold = 8;  // cycles fire mid-burst
  config.scheduler_service.max_batch_size = 16;
  config.scheduler_service.linger = std::chrono::milliseconds(10);
  // Telemetry is on by default; the knobs are spelled out here for the tour.
  config.telemetry.tracing = true;
  config.telemetry.metrics = true;
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "obs-tour";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1024));
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // --- a mixed-tenant burst: all three priority classes interleaved -----------
  constexpr std::size_t kRuns = 24;
  std::vector<api::InvokeRequest> requests(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    requests[i].image = created->image;
    requests[i].preferences.priority =
        static_cast<api::Priority>(i % api::kNumPriorities);
  }
  auto handles = client.invokeAll(requests);
  if (!handles.ok()) {
    std::cerr << handles.status().to_string() << "\n";
    return 1;
  }
  std::size_t completed = 0;
  for (auto& handle : *handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++completed;
  }
  std::cout << completed << "/" << kRuns << " runs completed\n";

  // --- pillar 2+3: one coherent snapshot, rendered as a scrape would see it ---
  const auto metrics = client.getMetrics();
  if (!metrics.ok()) {
    std::cerr << metrics.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\n--- Prometheus exposition (getMetrics + obs::render_prometheus) ---\n"
            << obs::render_prometheus(metrics->snapshot);

  // --- pillar 1: one run's lifecycle, both clocks ------------------------------
  const api::RunId run = handles->back().id();
  api::GetRunTraceRequest trace_request;
  trace_request.run = run;
  const auto trace = client.getRunTrace(trace_request);
  if (!trace.ok()) {
    std::cerr << trace.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\n--- trace timeline of run " << run << " (getRunTrace) ---\n";
  TextTable table({"span", "virtual [s]", "wall [ms]", "dur [ms]", "detail"});
  for (const auto& span : trace->trace.spans) {
    table.add_row({span.name, TextTable::num(span.virtual_start, 3),
                   TextTable::num(span.wall_start_us / 1000.0, 3),
                   TextTable::num((span.wall_end_us - span.wall_start_us) / 1000.0, 3),
                   span.detail});
  }
  table.print(std::cout);
  std::cout << "(" << trace->trace.recorded << " spans recorded, "
            << trace->trace.dropped << " dropped; JSONL export: "
            << "config.telemetry.trace_sink = obs::make_jsonl_file_sink(path))\n";
  return 0;
}
