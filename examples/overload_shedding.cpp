// Overload control at the front door: what a client sees when the cloud is
// full. The orchestrator is configured with a live-run bound of 8; a flood
// of 32 mixed-priority invocations hits it at once. Instead of queueing
// unboundedly (and blowing every deadline in the backlog), the admission
// gate sheds the surplus — lower classes first: batch loses access at 50%
// of the bound, standard at 75%, interactive only at the full bound. Each
// shed is a typed RESOURCE_EXHAUSTED carrying a machine-readable
// retry_after_seconds hint, so a well-behaved SDK backs off instead of
// hammering. The admitted runs complete normally, and getAdmissionStats
// shows the gate's ledger: accepted/shed per class, live runs vs the
// bound, and the pending queue's capacity-waitlist counters.

#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 33;
  config.trajectory_width_limit = 0;  // analytic model keeps the flood quick
  config.admission.max_live_runs = 8;     // the cloud is "full" at 8 live runs
  config.admission.shed_batch_at = 0.5;   // batch sheds at 4 live
  config.admission.shed_standard_at = 0.75;  // standard at 6
  config.admission.retry_after_seconds = 3.0;
  config.scheduler_service.queue_threshold = 100;  // park the flood: runs stay
  config.scheduler_service.linger = std::chrono::milliseconds(50);  // live a beat
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "shedding-demo";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1000));
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // --- the flood: 32 invocations, priorities round-robined ---------------------
  std::vector<api::RunHandle> admitted;
  std::string first_shed_message;
  for (int i = 0; i < 32; ++i) {
    api::InvokeRequest request;
    request.image = created->image;
    request.preferences.priority = static_cast<api::Priority>(i % api::kNumPriorities);
    auto handle = client.invoke(request);
    if (handle.ok()) {
      admitted.push_back(*std::move(handle));
      continue;
    }
    // A shed is not an error to retry blindly: it is RESOURCE_EXHAUSTED
    // with a typed hint for when to come back.
    if (first_shed_message.empty() &&
        handle.status().code() == api::StatusCode::kResourceExhausted &&
        handle.status().retry_after_seconds().has_value()) {
      first_shed_message = handle.status().to_string();
    }
  }
  std::cout << "admitted " << admitted.size() << " of 32 invocations\n"
            << "first shed verdict: " << first_shed_message << "\n\n";

  for (auto& handle : admitted) handle.wait();

  // --- the gate's ledger -------------------------------------------------------
  const auto admission = client.getAdmissionStats();
  if (!admission.ok()) {
    std::cerr << admission.status().to_string() << "\n";
    return 1;
  }
  const auto& stats = admission->stats;
  TextTable table({"class", "accepted", "shed"});
  const char* names[] = {"batch", "standard", "interactive"};
  for (std::size_t lane = 0; lane < api::kNumPriorities; ++lane) {
    table.add_row({names[lane], std::to_string(stats.accepted[lane]),
                   std::to_string(stats.shed[lane])});
  }
  table.print(std::cout, "admission ledger (live bound = " +
                             std::to_string(stats.max_live_runs) + ")");

  // The staircase: interactive keeps the most access, batch the least.
  if (stats.accepted[2] < stats.accepted[0]) {
    std::cerr << "unexpected: interactive admitted less than batch\n";
    return 1;
  }
  if (first_shed_message.empty()) {
    std::cerr << "unexpected: the flood never tripped the admission gate\n";
    return 1;
  }
  return 0;
}
