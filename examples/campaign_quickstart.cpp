// Campaign harness quickstart: parse a small declarative profile, run it
// against the real orchestrator + scheduler stack in deterministic
// lockstep pacing, and print the per-class latency / SLO table.
//
// The same profile text could live in a profiles/*.yaml file and run at
// a million-run scale through bench_campaign — the harness is identical,
// only the knobs grow.

#include <cstdio>
#include <iostream>

#include "campaign/driver.hpp"

int main() {
  using namespace qon;

  // ~500 virtual runs: two tenant classes on a diurnal arrival band.
  const char* kProfile = R"(
campaign:
  name: quickstart
  seed: 11
  duration_hours: 0.33
  stats_interval_seconds: 300
  pacing: lockstep
arrivals:
  process: diurnal
  rate_per_hour: 1500
fleet:
  num_qpus: 4
  executor_threads: 1
scheduler:
  queue_threshold: 50
tenants:
  - name: interactive-ghz
    weight: 0.3
    priority: interactive
    circuit: ghz
    width: 4
    shots: 512
    fidelity_weight: 0.8
  - name: batch-qaoa
    weight: 0.7
    priority: batch
    circuit: qaoa
    width: 6
    shots: 2048
slo:
  interactive_seconds: 600
  batch_seconds: 7200
)";

  const auto profile = campaign::parse_profile(kProfile);
  if (!profile.ok()) {
    std::fprintf(stderr, "profile: %s\n", profile.status().to_string().c_str());
    return 1;
  }

  std::cout << "running campaign '" << profile->name << "' ("
            << campaign::arrival_kind_name(profile->arrivals.kind)
            << " arrivals, " << profile->duration_hours << " h of virtual time, "
            << campaign::pacing_mode_name(profile->pacing) << " pacing)...\n";

  const auto report = campaign::run_campaign(*profile);
  if (!report.ok()) {
    std::fprintf(stderr, "campaign: %s\n", report.status().to_string().c_str());
    return 1;
  }

  campaign::print_slo_table(std::cout, *report);
  std::cout << "\narrivals " << report->arrivals << " | admitted "
            << report->admitted << " | completed " << report->completed
            << " | failed " << report->failed << " | scheduling cycles "
            << report->sched_cycles << "\nvirtual time "
            << report->virtual_duration_seconds << " s, wall "
            << report->wall_seconds << " s\n";
  return 0;
}
