// Scheduler deep-dive: one scheduling cycle over a synthetic job queue,
// showing (1) the Pareto front NSGA-II produces, (2) how the MCDM
// preference vector moves the chosen solution along it, and (3) how the
// baselines compare — §7 of the paper in one sitting.

#include <iostream>

#include "api/client.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sched/baselines.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "sched/problem.hpp"

namespace {

using namespace qon;

sched::SchedulingInput make_queue(std::size_t jobs, std::size_t qpus, std::uint64_t seed) {
  Rng rng(seed);
  sched::SchedulingInput input;
  for (std::size_t q = 0; q < qpus; ++q) {
    const double quality = static_cast<double>(q) / static_cast<double>(qpus - 1);
    input.qpus.push_back({"qpu" + std::to_string(q), 27,
                          (1.0 - quality) * 900.0 + rng.uniform(0.0, 100.0), true});
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    sched::QuantumJob job;
    job.id = j;
    job.qubits = static_cast<int>(rng.uniform_int(2, 24));
    job.shots = 4000;
    for (std::size_t q = 0; q < qpus; ++q) {
      const double quality = static_cast<double>(q) / static_cast<double>(qpus - 1);
      job.est_fidelity.push_back(std::max(0.1, 0.9 - 0.2 * quality - rng.uniform(0.0, 0.05)));
      job.est_exec_seconds.push_back(rng.uniform(2.0, 8.0));
    }
    input.jobs.push_back(std::move(job));
  }
  return input;
}

// Mean JCT / fidelity of a fixed assignment under Eq. 1.
std::pair<double, double> evaluate(const sched::SchedulingInput& input,
                                   const std::vector<int>& assignment) {
  const sched::SchedulingProblem problem(input);
  std::vector<int> genome = assignment;
  problem.repair(genome);
  std::vector<double> objectives;
  problem.evaluate(genome, objectives);
  return {objectives[0], 1.0 - objectives[1]};
}

}  // namespace

int main() {
  const auto input = make_queue(60, 6, 2025);

  // --- the Pareto front under equal weights -----------------------------------
  sched::SchedulerConfig config;
  config.fidelity_weight = 0.5;
  config.nsga2.seed = 3;
  const auto decision = sched::schedule_cycle(input, config);

  TextTable front({"front member", "mean JCT [s]", "mean fidelity"});
  for (std::size_t i = 0; i < decision.pareto_front.size(); ++i) {
    const auto& point = decision.pareto_front[i];
    front.add_row({std::to_string(i), TextTable::num(point.mean_jct, 1),
                   TextTable::num(point.mean_fidelity(), 3)});
  }
  front.print(std::cout, "Pareto front of one scheduling cycle (60 jobs, 6 QPUs)");

  // --- preference sweep ---------------------------------------------------------
  TextTable sweep({"fidelity weight", "chosen JCT [s]", "chosen fidelity"});
  for (const double weight : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sched::SchedulerConfig c;
    c.fidelity_weight = weight;
    c.nsga2.seed = 3;
    const auto d = sched::schedule_cycle(input, c);
    sweep.add_row({TextTable::num(weight, 2), TextTable::num(d.chosen.mean_jct, 1),
                   TextTable::num(d.chosen.mean_fidelity(), 3)});
  }
  sweep.print(std::cout, "MCDM preference sweep");

  // --- baselines ------------------------------------------------------------------
  TextTable baselines({"policy", "mean JCT [s]", "mean fidelity"});
  const auto [jct_q, fid_q] = evaluate(input, decision.assignment);
  baselines.add_row({"qonductor (balanced)", TextTable::num(jct_q, 1),
                     TextTable::num(fid_q, 3)});
  const auto best_fid = sched::assign_best_fidelity_fcfs(input);
  const auto [jct_f, fid_f] = evaluate(input, best_fid);
  baselines.add_row({"best-fidelity FCFS", TextTable::num(jct_f, 1), TextTable::num(fid_f, 3)});
  const auto least_busy = sched::assign_least_busy(input);
  const auto [jct_l, fid_l] = evaluate(input, least_busy);
  baselines.add_row({"least-busy", TextTable::num(jct_l, 1), TextTable::num(fid_l, 3)});
  baselines.print(std::cout, "policy comparison on the same queue");

  // --- the same cycle over the typed control-plane facade -------------------------
  // Tenants don't call schedule_cycle() directly: generateSchedule is a
  // Table-2 control-plane operation, exposed (typed, non-throwing) on the
  // v1 client. The orchestrator applies its own configured MCDM weights.
  {
    core::QonductorConfig qonductor_config;
    qonductor_config.fidelity_weight = 0.5;
    qonductor_config.num_qpus = 2;  // scheduling input below carries its own QPUs
    api::QonductorClient client(qonductor_config);
    const auto via_api = client.generateSchedule(input);
    if (!via_api.ok()) {
      std::cerr << "generateSchedule failed: " << via_api.status().to_string() << "\n";
      return 1;
    }
    const auto [jct_api, fid_api] = evaluate(input, via_api->assignment);
    std::cout << "\nvia api::QonductorClient v" << api::QonductorClient::version()
              << " generateSchedule: mean JCT " << TextTable::num(jct_api, 1)
              << " s, mean fidelity " << TextTable::num(fid_api, 3) << "\n";
  }

  std::cout << "\nstage timings: preprocess "
            << TextTable::num(decision.preprocess_seconds * 1e3, 2) << " ms, optimize "
            << TextTable::num(decision.optimize_seconds * 1e3, 2) << " ms, select "
            << TextTable::num(decision.select_seconds * 1e3, 2) << " ms ("
            << decision.nsga2_generations << " generations, " << decision.nsga2_evaluations
            << " evaluations)\n";
  return 0;
}
