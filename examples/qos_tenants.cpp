// Per-job QoS (api::JobPreferences): two tenants share one burst with
// opposite fidelity/JCT preferences, and the SAME scheduling cycle serves
// both — per-job MCDM places each job on the Pareto point matching its own
// preference, so the "hifi" tenant lands on high-fidelity QPUs while the
// "turbo" tenant takes the fast lanes. A second act shows a QoS deadline:
// a run parked past its deadline fails with the typed DEADLINE_EXCEEDED
// instead of occupying a QPU.

#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

constexpr std::size_t kPerTenant = 12;

struct TenantOutcome {
  double mean_fidelity = 0.0;
  double mean_jct = 0.0;  ///< mean completion time on the fleet clock [s]
};

TenantOutcome summarize(const std::vector<qon::api::RunHandle>& handles) {
  TenantOutcome outcome;
  std::size_t counted = 0;
  for (const auto& handle : handles) {
    const auto result = handle.result();
    if (!result.ok() || result->tasks.empty()) continue;
    outcome.mean_fidelity += result->tasks[0].fidelity;
    outcome.mean_jct += result->tasks[0].end;
    ++counted;
  }
  if (counted > 0) {
    outcome.mean_fidelity /= static_cast<double>(counted);
    outcome.mean_jct /= static_cast<double>(counted);
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 97;
  config.executor_threads = 2 * kPerTenant;  // the whole burst parks at once
  config.retention.max_terminal_runs = 2 * kPerTenant + 8;
  // One cycle takes the whole mixed burst: both tenants, one Pareto front.
  config.scheduler_service.queue_threshold = 2 * kPerTenant;
  config.scheduler_service.linger = std::chrono::milliseconds(500);
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "qos-tenants";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1000));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // The same burst, interleaved: tenant "hifi" maximizes fidelity at
  // interactive priority, tenant "turbo" minimizes completion time in the
  // batch class. Neither knob is process-global — it rides the request.
  std::vector<api::InvokeRequest> requests(2 * kPerTenant);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].image = created->image;
    if (i % 2 == 0) {
      requests[i].preferences.fidelity_weight = 0.95;
      requests[i].preferences.priority = api::Priority::kInteractive;
    } else {
      requests[i].preferences.fidelity_weight = 0.05;
      requests[i].preferences.priority = api::Priority::kBatch;
    }
  }
  std::cout << "submitting one mixed burst: " << kPerTenant << " 'hifi' + "
            << kPerTenant << " 'turbo' runs...\n";
  const auto handles = client.invokeAll(requests);
  if (!handles.ok()) {
    std::cerr << handles.status().to_string() << "\n";
    return 1;
  }
  std::vector<api::RunHandle> hifi;
  std::vector<api::RunHandle> turbo;
  for (std::size_t i = 0; i < handles->size(); ++i) {
    ((i % 2 == 0) ? hifi : turbo).push_back((*handles)[i]);
    (*handles)[i].wait();
  }

  const TenantOutcome hifi_outcome = summarize(hifi);
  const TenantOutcome turbo_outcome = summarize(turbo);
  TextTable tenants({"tenant", "fidelity weight", "priority", "mean fidelity",
                     "mean JCT [s]"});
  tenants.add_row({"hifi", "0.95", "interactive",
                   TextTable::num(hifi_outcome.mean_fidelity, 4),
                   TextTable::num(hifi_outcome.mean_jct, 1)});
  tenants.add_row({"turbo", "0.05", "batch",
                   TextTable::num(turbo_outcome.mean_fidelity, 4),
                   TextTable::num(turbo_outcome.mean_jct, 1)});
  tenants.print(std::cout, "one burst, two tradeoffs (per-job MCDM)");

  const auto stats = client.getSchedulerStats();
  if (stats.ok()) {
    TextTable waits({"priority class", "jobs", "queue wait p50 [s]"});
    for (std::size_t p = api::kNumPriorities; p-- > 0;) {
      const auto& history = stats->stats.recent_queue_waits_by_priority[p];
      waits.add_row({api::priority_name(static_cast<api::Priority>(p)),
                     std::to_string(history.size()),
                     history.empty() ? "-" : TextTable::num(percentile(history, 50.0), 1)});
    }
    waits.print(std::cout, "per-priority queue waits (getSchedulerStats)");
  }

  // --- act two: a deadline that cannot be met ---------------------------------
  // With the threshold out of reach the next cycle is the 120 s virtual
  // timer — far past this run's 10 s deadline. The run fails typed.
  api::InvokeRequest missed;
  missed.image = created->image;
  missed.preferences.deadline_seconds = client.backend().fleetNow() + 10.0;
  auto missed_handle = client.invoke(missed);
  if (!missed_handle.ok()) {
    std::cerr << missed_handle.status().to_string() << "\n";
    return 1;
  }
  missed_handle->wait();
  const auto missed_result = missed_handle->result();
  std::cout << "\nrun with a 10 s deadline while the next cycle is the 120 s timer:\n  "
            << (missed_result.ok() ? missed_result->error.to_string() : "?") << "\n";

  std::cout << "\nsame burst, same cycle: the hifi tenant bought fidelity ("
            << TextTable::num(hifi_outcome.mean_fidelity, 4) << " vs "
            << TextTable::num(turbo_outcome.mean_fidelity, 4)
            << "), the turbo tenant bought completion time ("
            << TextTable::num(turbo_outcome.mean_jct, 1) << " s vs "
            << TextTable::num(hifi_outcome.mean_jct, 1) << " s).\n";
  return 0;
}
