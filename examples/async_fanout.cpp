// Async fan-out: the non-blocking half of the v1 API. A single client
// submits a batch of workflow runs with invokeAll(), keeps the RunHandles,
// does other work while the executor pool drains the batch, cancels one
// run mid-flight, collects every result, and then audits the batch through
// the run-table queries (listRuns / getRun) — the job-lifecycle pattern
// (submit / poll / wait / cancel / list) a multi-tenant control plane
// needs. The orchestrator's run table is bounded: terminal runs beyond the
// retention policy are LRU-evicted, so a long-lived client can fan out
// forever without leaking a record per run.

#include <iostream>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 58;
  config.executor_threads = 4;       // four runs make progress concurrently
  config.retention.max_terminal_runs = 6;  // keep only the 6 freshest results
  api::QonductorClient client(config);

  // --- package and deploy a small mitigated-GHZ workflow ----------------------
  api::CreateWorkflowRequest create;
  create.name = "ghz-fanout";
  create.tasks.push_back(workflow::HybridTask::classical("prepare", 0.2));
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(5), 2000));
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // --- fan out a batch of runs -------------------------------------------------
  constexpr std::size_t kRuns = 8;
  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = created->image;
  const auto batch = client.invokeAll(requests);
  if (!batch.ok()) {
    std::cerr << "invokeAll failed: " << batch.status().to_string() << "\n";
    return 1;
  }
  std::cout << kRuns << " runs submitted; invokeAll returned while they execute.\n";

  // The client is free here: poll a snapshot of the in-flight batch...
  std::size_t terminal = 0;
  for (const auto& handle : *batch) {
    if (api::run_status_terminal(handle.poll())) ++terminal;
  }
  std::cout << "snapshot right after submit: " << terminal << "/" << kRuns
            << " runs already terminal\n";

  // ...and cancel one run it no longer needs. Cancellation is cooperative
  // (takes effect at the next task boundary), so a run that already
  // finished just reports kCompleted.
  const auto& victim = (*batch)[kRuns - 1];
  const bool cancelled = victim.cancel();
  std::cout << "cancel(run " << victim.id() << ") "
            << (cancelled ? "requested" : "too late — already terminal") << "\n\n";

  // --- collect -----------------------------------------------------------------
  TextTable table({"run", "status", "tasks", "makespan [s]", "min fidelity", "cost [$]"});
  for (const auto& handle : *batch) {
    const auto report = handle.result();  // waits for this run to settle
    if (!report.ok()) {
      std::cerr << report.status().to_string() << "\n";
      return 1;
    }
    table.add_row({std::to_string(report->run), api::run_status_name(report->status),
                   std::to_string(report->tasks.size()),
                   TextTable::num(report->makespan_seconds, 2),
                   report->status == api::RunStatus::kCompleted
                       ? TextTable::num(report->min_fidelity, 3)
                       : "-",
                   TextTable::num(report->total_cost_dollars, 3)});
  }
  table.print(std::cout, "fan-out batch results");

  // --- audit through the run table --------------------------------------------
  // listRuns() pages over what the control plane still remembers. With a
  // retention budget of 6 terminal runs, the two runs that settled first
  // have already been garbage-collected — their ids answer NOT_FOUND, even
  // though the RunHandles above kept answering from the shared records.
  const auto listed = client.listRuns();
  if (!listed.ok()) {
    std::cerr << listed.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\nrun table after the batch (retention keeps "
            << config.retention.max_terminal_runs << "):\n";
  for (const auto& info : listed->runs) {
    std::cout << "  run " << info.run << "  " << api::run_status_name(info.status)
              << "  submitted@" << TextTable::num(info.submitted_at, 2)
              << "s finished@" << TextTable::num(info.finished_at, 2) << "s\n";
  }
  for (const auto& handle : *batch) {
    if (const auto info = client.getRun(handle.id()); !info.ok()) {
      std::cout << "getRun(run " << handle.id() << "): " << info.status().to_string()
                << " — evicted, but the handle still answers: "
                << api::run_status_name(handle.poll()) << "\n";
    }
  }
  return 0;
}
