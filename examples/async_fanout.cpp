// Async fan-out: the non-blocking half of the v1 API at run-engine scale.
// A single client submits a 1000-run batch with invokeAll() — on an
// orchestrator with only TWO engine workers. The event-driven run engine
// decouples in-flight runs from threads: every run is live at once (the
// peak live-run count prints below), quantum tasks park in the scheduler
// service instead of blocking a worker, and scheduling cycles batch them
// by the hundreds. The client cancels one run mid-flight, collects every
// result, and audits the batch through the run-table queries (listRuns /
// getRun) — the job-lifecycle pattern (submit / poll / wait / cancel /
// list) a multi-tenant control plane needs. The run table is bounded:
// terminal runs beyond the retention policy are LRU-evicted, so a
// long-lived client can fan out forever without leaking a record per run.

#include <iostream>
#include <map>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;

  core::QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 58;
  config.executor_threads = 2;        // two workers drive the whole fan-out
  config.trajectory_width_limit = 0;  // analytic model keeps 1000 runs quick
  config.retention.max_terminal_runs = 6;  // keep only the 6 freshest results
  config.scheduler_service.queue_threshold = 100;
  config.scheduler_service.max_batch_size = 250;
  api::QonductorClient client(config);

  // --- package and deploy a small mitigated-GHZ workflow ----------------------
  api::CreateWorkflowRequest create;
  create.name = "ghz-fanout";
  create.tasks.push_back(workflow::HybridTask::classical("prepare", 0.2));
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(5), 2000));
  const auto created = client.createWorkflow(create);
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  if (const auto deployed = client.deploy(deploy_request); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // --- fan out a burst of runs -------------------------------------------------
  constexpr std::size_t kRuns = 1000;
  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = created->image;
  const auto batch = client.invokeAll(requests);
  if (!batch.ok()) {
    std::cerr << "invokeAll failed: " << batch.status().to_string() << "\n";
    return 1;
  }
  std::cout << kRuns << " runs submitted; invokeAll returned while they execute on "
            << client.backend().runEngine().workers() << " engine workers.\n";

  // The client is free here: poll a snapshot of the in-flight batch...
  std::size_t terminal = 0;
  for (const auto& handle : *batch) {
    if (api::run_status_terminal(handle.poll())) ++terminal;
  }
  std::cout << "snapshot right after submit: " << terminal << "/" << kRuns
            << " runs already terminal, "
            << client.backend().runEngine().live_runs() << " live\n";

  // ...and cancel one run it no longer needs. Cancellation is cooperative
  // (a parked quantum task is pulled straight out of the pending queue), so
  // a run that already finished just reports kCompleted.
  const auto& victim = (*batch)[kRuns - 1];
  const bool cancelled = victim.cancel();
  std::cout << "cancel(run " << victim.id() << ") "
            << (cancelled ? "requested" : "too late — already terminal") << "\n\n";

  // --- collect -----------------------------------------------------------------
  std::map<std::string, std::size_t> outcomes;
  double total_cost = 0.0;
  double worst_fidelity = 1.0;
  for (const auto& handle : *batch) {
    const auto report = handle.result();  // waits for this run to settle
    if (!report.ok()) {
      std::cerr << report.status().to_string() << "\n";
      return 1;
    }
    ++outcomes[api::run_status_name(report->status)];
    total_cost += report->total_cost_dollars;
    if (report->status == api::RunStatus::kCompleted) {
      worst_fidelity = std::min(worst_fidelity, report->min_fidelity);
    }
  }
  TextTable table({"metric", "value"});
  for (const auto& [status, count] : outcomes) {
    table.add_row({"runs " + status, std::to_string(count)});
  }
  table.add_row({"peak live runs (2 workers)",
                 std::to_string(client.backend().runEngine().peak_live_runs())});
  table.add_row({"scheduling cycles",
                 std::to_string(client.getSchedulerStats()->stats.cycles)});
  table.add_row({"worst completed fidelity", TextTable::num(worst_fidelity, 3)});
  table.add_row({"total cost [$]", TextTable::num(total_cost, 2)});
  table.print(std::cout, "fan-out batch summary");

  // --- audit through the run table --------------------------------------------
  // listRuns() pages over what the control plane still remembers. With a
  // retention budget of 6 terminal runs, almost the whole burst has been
  // garbage-collected — evicted ids answer NOT_FOUND, yet the RunHandles
  // above kept answering from the shared records.
  const auto listed = client.listRuns();
  if (!listed.ok()) {
    std::cerr << listed.status().to_string() << "\n";
    return 1;
  }
  std::cout << "\nrun table after the batch (retention keeps "
            << config.retention.max_terminal_runs << " of " << kRuns << "):\n";
  for (const auto& info : listed->runs) {
    std::cout << "  run " << info.run << "  " << api::run_status_name(info.status)
              << "  submitted@" << TextTable::num(info.submitted_at, 2)
              << "s finished@" << TextTable::num(info.finished_at, 2) << "s\n";
  }
  std::size_t evicted = 0;
  for (const auto& handle : *batch) {
    if (const auto info = client.getRun(handle.id()); !info.ok()) ++evicted;
  }
  std::cout << evicted << " runs evicted from the table; their handles still answer "
            << "(e.g. run " << (*batch)[0].id() << ": "
            << api::run_status_name((*batch)[0].poll()) << ")\n";
  return 0;
}
